package server

import (
	"container/list"
	"sync"
)

// planCache is a mutex-guarded LRU of compiled query plans, keyed by
// (ontology fingerprint, query kind, query text) — or, for the batching
// tier's shape-group plans (kind "mqo"), by (fingerprint, epoch,
// canonical pattern). A hit skips the rewriter (GenOGP or PerfectRef)
// and the candidate-space build; only enumeration runs per request.
// Plans are safe to share: both ogpa.PreparedQuery.Answer and the
// engine's Plan.Run are concurrent-safe, so one cached plan may serve
// overlapping requests. Entries are opaque (any): each kind stores
// exactly one concrete type (*ogpa.PreparedQuery for request kinds, the
// batch tier's opaque plan handle for "mqo"), and the kind is part of
// every key, so a get can never observe a foreign type. Hits and misses
// are counted per kind so /stats can show how the cache splits between
// the primary pipeline, baselines and batch groups.
//
// Every sibling field is accessed under mu (the locksafety analyzer
// enforces the discipline).
type planCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
	byKind map[string]*kindCounters
}

// kindCounters are the per-kind hit/miss tallies behind the cache's mu.
type kindCounters struct {
	hits   uint64
	misses uint64
}

type planEntry struct {
	key  string
	kind string
	plan any
}

// newPlanCache builds a cache holding up to capacity plans; capacity
// <= 0 returns nil (caching disabled — a nil *planCache is inert).
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		cap:    capacity,
		ll:     list.New(),
		items:  make(map[string]*list.Element, capacity),
		byKind: make(map[string]*kindCounters),
	}
}

// get returns the cached plan for key, promoting it to most recently
// used, or nil on a miss. Hit/miss counters (total and per kind) move
// here.
func (c *planCache) get(kind, key string) any {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kc := c.byKind[kind]
	if kc == nil {
		kc = &kindCounters{}
		c.byKind[kind] = kc
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		kc.misses++
		return nil
	}
	c.hits++
	kc.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).plan
}

// put inserts a plan, evicting the least recently used entry when full.
// A concurrent duplicate insert (two requests missing on the same key)
// just refreshes the existing entry.
func (c *planCache) put(kind, key string, plan any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).plan = plan
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, kind: kind, plan: plan})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
	}
}

// snapshot reports the counters and current size.
func (c *planCache) snapshot() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// snapshotByKind reports per-kind hits, misses and resident plan counts.
// Size is recomputed by walking the (bounded, <= cap) entry list.
func (c *planCache) snapshotByKind() map[string]PlanCacheKindStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]PlanCacheKindStats, len(c.byKind))
	for kind, kc := range c.byKind {
		out[kind] = PlanCacheKindStats{Hits: kc.hits, Misses: kc.misses}
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		kind := el.Value.(*planEntry).kind
		ks := out[kind]
		ks.Size++
		out[kind] = ks
	}
	return out
}
