package server

import (
	"container/list"
	"sync"

	"ogpa"
)

// planCache is a mutex-guarded LRU of compiled query plans
// (ogpa.PreparedQuery), keyed by (ontology fingerprint, query kind,
// query text). A hit skips GenOGP, the OGP's candidate-space build and
// the BDD compilation; only enumeration runs per request. Plans are
// safe to share: PreparedQuery.Answer is concurrent-safe, so one cached
// plan may serve overlapping requests.
//
// Every sibling field is accessed under mu (the locksafety analyzer
// enforces the discipline).
type planCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type planEntry struct {
	key  string
	plan *ogpa.PreparedQuery
}

// newPlanCache builds a cache holding up to capacity plans; capacity
// <= 0 returns nil (caching disabled — a nil *planCache is inert).
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached plan for key, promoting it to most recently
// used, or nil on a miss. Hit/miss counters move here.
func (c *planCache) get(key string) *ogpa.PreparedQuery {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).plan
}

// put inserts a plan, evicting the least recently used entry when full.
// A concurrent duplicate insert (two requests missing on the same key)
// just refreshes the existing entry.
func (c *planCache) put(key string, plan *ogpa.PreparedQuery) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).plan = plan
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, plan: plan})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
	}
}

// snapshot reports the counters and current size.
func (c *planCache) snapshot() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
