package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ogpa"
)

// subKB returns a live KB and a handler with subscriptions enabled.
func subKB(t *testing.T, cfg Config) (*ogpa.KB, http.Handler) {
	t.Helper()
	kb := testKB(t)
	if err := kb.EnableLiveData(-1); err != nil {
		t.Fatal(err)
	}
	cfg.Subscriptions = true
	h := HandlerWithConfig(kb, cfg)
	t.Cleanup(func() {
		//lint:ignore droppederr test teardown; Close failures surface as leaked-goroutine noise, not silent corruption
		_ = kb.Close()
	})
	return kb, h
}

// subscribe registers a standing query and returns its id.
func subscribe(t *testing.T, h http.Handler, body string) SubscribeResponse {
	t.Helper()
	rec := do(t, h, "POST", "/subscribe", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("subscribe status %d: %s", rec.Code, rec.Body)
	}
	var resp SubscribeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// poll long-polls one delta; it fails the test on any status but 200.
func poll(t *testing.T, h http.Handler, id uint64) ogpa.AnswerDelta {
	t.Helper()
	rec := do(t, h, "GET", fmt.Sprintf("/subscribe/%d/poll?timeoutMs=10000", id), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("poll status %d: %s", rec.Code, rec.Body)
	}
	var d ogpa.AnswerDelta
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSubscribeEndpointLifecycle(t *testing.T) {
	kb, h := subKB(t, Config{})

	resp := subscribe(t, h, `{"query":"q(x) :- Student(x)"}`)
	if resp.ID == 0 || resp.Baseline != string(ogpa.BaselineDatalog) ||
		len(resp.Vars) != 1 || resp.Vars[0] != "x" {
		t.Fatalf("subscribe resp = %+v", resp)
	}

	// First poll: the full current answer set.
	d := poll(t, h, resp.ID)
	if len(d.Added) != 2 || d.Added[0][0] != "Ann" || d.Added[1][0] != "Bob" || len(d.Removed) != 0 {
		t.Fatalf("initial delta = %+v", d)
	}

	// A mutation produces exactly its delta at the bumped epoch.
	if rec := do(t, h, "POST", "/insert", "Carl a Student ."); rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	d = poll(t, h, resp.ID)
	if len(d.Added) != 1 || d.Added[0][0] != "Carl" || d.Epoch != kb.Epoch() {
		t.Fatalf("post-insert delta = %+v (epoch %d)", d, kb.Epoch())
	}

	// No pending change: the long poll times out as 204, not an error.
	if rec := do(t, h, "GET", fmt.Sprintf("/subscribe/%d/poll?timeoutMs=50", resp.ID), ""); rec.Code != http.StatusNoContent {
		t.Fatalf("idle poll status %d: %s", rec.Code, rec.Body)
	}

	// /stats shows the incremental block with a live subscription.
	var st StatsResponse
	if rec := do(t, h, "GET", "/stats", ""); rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	} else if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Incremental == nil || !st.Incremental.Enabled || st.Incremental.Subscriptions != 1 ||
		st.Incremental.Deltas == 0 || st.Incremental.Epoch != kb.Epoch() {
		t.Fatalf("stats incremental = %+v", st.Incremental)
	}

	// Unsubscribe; the id is gone from the hub, so later polls and
	// re-deletes answer 404 (410 covers only the in-flight-poll race).
	if rec := do(t, h, "DELETE", fmt.Sprintf("/subscribe/%d", resp.ID), ""); rec.Code != http.StatusOK {
		t.Fatalf("unsubscribe status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", fmt.Sprintf("/subscribe/%d/poll", resp.ID), ""); rec.Code != http.StatusNotFound {
		t.Fatalf("closed poll status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "DELETE", fmt.Sprintf("/subscribe/%d", resp.ID), ""); rec.Code != http.StatusNotFound {
		t.Fatalf("re-delete status %d: %s", rec.Code, rec.Body)
	}
}

func TestSubscribeEndpointValidation(t *testing.T) {
	_, h := subKB(t, Config{})
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/subscribe", `{"query":""}`, http.StatusBadRequest},
		{"POST", "/subscribe", `{"query":"q(x) :- Student(x)","baseline":"perfectref+daf"}`, http.StatusBadRequest},
		{"POST", "/subscribe", `{"query":"q(x) :- Student(x)","bogus":1}`, http.StatusBadRequest},
		{"GET", "/subscribe/abc/poll", "", http.StatusBadRequest},
		{"GET", "/subscribe/999/poll", "", http.StatusNotFound},
		{"DELETE", "/subscribe/999", "", http.StatusNotFound},
	} {
		if rec := do(t, h, tc.method, tc.path, tc.body); rec.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, rec.Code, tc.want, rec.Body)
		}
	}
	// The invalid-timeout case needs a live id to reach the parse.
	resp := subscribe(t, h, `{"query":"q(x) :- Student(x)"}`)
	if rec := do(t, h, "GET", fmt.Sprintf("/subscribe/%d/poll?timeoutMs=nope", resp.ID), ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad timeoutMs: status %d", rec.Code)
	}
}

func TestSubscribeRequiresIncremental(t *testing.T) {
	// Subscriptions on a read-only KB: routes exist but answer 403.
	h := HandlerWithConfig(testKB(t), Config{Subscriptions: true})
	if rec := do(t, h, "POST", "/subscribe", `{"query":"q(x) :- Student(x)"}`); rec.Code != http.StatusForbidden {
		t.Fatalf("read-only subscribe status %d: %s", rec.Code, rec.Body)
	}
	// Without the config flag the routes are not registered at all.
	h = Handler(testKB(t))
	if rec := do(t, h, "POST", "/subscribe", `{"query":"q(x) :- Student(x)"}`); rec.Code == http.StatusForbidden || rec.Code == http.StatusOK {
		t.Fatalf("unregistered subscribe status %d", rec.Code)
	}
}

func TestSubscribeMaxRowsClamp(t *testing.T) {
	_, h := subKB(t, Config{SubscriptionMaxRows: 2})
	resp := subscribe(t, h, `{"query":"q(x) :- Student(x)","maxRows":100}`)
	d := poll(t, h, resp.ID) // Ann, Bob — exactly at the clamped cap
	if len(d.Added) != 2 {
		t.Fatalf("initial delta = %+v", d)
	}
	if rec := do(t, h, "POST", "/insert", "Carl a Student ."); rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	// The third row breaches the server clamp: the subscription fails
	// closed and the poll surfaces the cause.
	rec := do(t, h, "GET", fmt.Sprintf("/subscribe/%d/poll?timeoutMs=10000", resp.ID), "")
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "limit") {
		t.Fatalf("breach poll status %d: %s", rec.Code, rec.Body)
	}
}

func TestSubscribeSSE(t *testing.T) {
	_, h := subKB(t, Config{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp := subscribe(t, h, `{"query":"q(x) :- Student(x)"}`)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/subscribe/%d/events", srv.URL, resp.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("content type %q", res.Header.Get("Content-Type"))
	}

	// readDelta scans one "event: delta" frame off the stream.
	sc := bufio.NewScanner(res.Body)
	readDelta := func() ogpa.AnswerDelta {
		t.Helper()
		var d ogpa.AnswerDelta
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") && line != "event: delta" {
				t.Fatalf("unexpected frame %q", line)
			}
			if strings.HasPrefix(line, "data: ") {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d); err != nil {
					t.Fatal(err)
				}
				return d
			}
		}
		t.Fatalf("stream ended: %v", sc.Err())
		return d
	}

	d := readDelta()
	if len(d.Added) != 2 {
		t.Fatalf("initial SSE delta = %+v", d)
	}
	if rec := do(t, h, "POST", "/insert", "Dana a Student ."); rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	d = readDelta()
	if len(d.Added) != 1 || d.Added[0][0] != "Dana" {
		t.Fatalf("post-insert SSE delta = %+v", d)
	}
}

// TestSubscribeConcurrentMutations folds a subscription's long-poll
// stream against concurrent POST /insert and /delete traffic (run under
// -race): the replayed set must converge on the live answer set.
func TestSubscribeConcurrentMutations(t *testing.T) {
	_, h := subKB(t, Config{})
	resp := subscribe(t, h, `{"query":"q(x) :- Student(x)"}`)

	const writers, perWriter = 3, 12
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				line := fmt.Sprintf("w%d_%d a Student .", i, j)
				if rec := do(t, h, "POST", "/insert", line); rec.Code != http.StatusOK {
					t.Errorf("insert: %d %s", rec.Code, rec.Body)
					return
				}
				if j%3 == 2 {
					if rec := do(t, h, "POST", "/delete", line); rec.Code != http.StatusOK {
						t.Errorf("delete: %d %s", rec.Code, rec.Body)
						return
					}
				}
			}
		}(i)
	}

	set := map[string]bool{}
	fold := func(d ogpa.AnswerDelta) {
		for _, r := range d.Removed {
			delete(set, strings.Join(r, ","))
		}
		for _, r := range d.Added {
			set[strings.Join(r, ",")] = true
		}
	}
	matches := func() bool {
		rec := do(t, h, "POST", "/query", `{"query":"q(x) :- Student(x)","baseline":"datalog"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("query status %d: %s", rec.Code, rec.Body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			t.Fatal(err)
		}
		if len(set) != qr.Count {
			return false
		}
		for _, row := range qr.Rows {
			if !set[strings.Join(row, ",")] {
				return false
			}
		}
		return true
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for tries := 0; tries < 600; tries++ {
		rec := do(t, h, "GET", fmt.Sprintf("/subscribe/%d/poll?timeoutMs=100", resp.ID), "")
		switch rec.Code {
		case http.StatusOK:
			var d ogpa.AnswerDelta
			if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
				t.Fatal(err)
			}
			fold(d)
		case http.StatusNoContent:
			select {
			case <-done:
				if matches() {
					return
				}
			default:
			}
		default:
			t.Fatalf("poll status %d: %s", rec.Code, rec.Body)
		}
	}
	t.Fatalf("delta stream never converged: replayed %d rows", len(set))
}
