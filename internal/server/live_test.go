package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ogpa"
)

func liveTestKB(t testing.TB) *ogpa.KB {
	t.Helper()
	kb, err := ogpa.NewKB(strings.NewReader(`
Student SubClassOf some takesCourse
PhD SubClassOf Student
`), strings.NewReader(`
PhD(Ann)
Student(Bob)
takesCourse(Bob, DB101)
`))
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableLiveData(0); err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestMutationEndpointsReadOnly(t *testing.T) {
	h := Handler(testKB(t)) // not live
	for _, path := range []string{"/insert", "/delete"} {
		rec := do(t, h, "POST", path, "X a Student .")
		if rec.Code != http.StatusForbidden {
			t.Fatalf("%s on read-only KB: status %d, want 403", path, rec.Code)
		}
	}
}

func TestInsertDeleteEndpoints(t *testing.T) {
	h := Handler(liveTestKB(t))

	query := `{"query":"q(x) :- Student(x)"}`
	rec := do(t, h, "POST", "/query", query)
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 2 {
		t.Fatalf("baseline count = %d", qr.Count)
	}

	rec = do(t, h, "POST", "/insert", "Carl a Student .\nCarl takesCourse DB101 .")
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 2 || mr.Epoch != 2 || mr.OverlaySize != 2 {
		t.Fatalf("insert resp = %+v", mr)
	}

	rec = do(t, h, "POST", "/query", query)
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 3 {
		t.Fatalf("post-insert count = %d: %s", qr.Count, rec.Body)
	}

	rec = do(t, h, "POST", "/delete", "Carl a Student .")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 1 || mr.Epoch != 3 {
		t.Fatalf("delete resp = %+v", mr)
	}

	rec = do(t, h, "POST", "/query", query)
	//lint:ignore droppederr decoded below via Count check
	_ = json.Unmarshal(rec.Body.Bytes(), &qr)
	if qr.Count != 2 {
		t.Fatalf("post-delete count = %d", qr.Count)
	}

	// A bad batch applies nothing and reports 400.
	rec = do(t, h, "POST", "/insert", "Eve a Student .\ngarbage line without dot")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad batch status %d", rec.Code)
	}
	rec = do(t, h, "POST", "/query", query)
	//lint:ignore droppederr decoded below via Count check
	_ = json.Unmarshal(rec.Body.Bytes(), &qr)
	if qr.Count != 2 {
		t.Fatalf("rejected batch leaked: count = %d", qr.Count)
	}

	// Stats reflect the live store and mutation counters.
	rec = do(t, h, "GET", "/stats", "")
	var sr StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Live || sr.Epoch != 3 || sr.Inserts != 1 || sr.Deletes != 1 {
		t.Fatalf("stats = %+v", sr)
	}
	if !strings.Contains(sr.Stats, "live epoch=3") {
		t.Fatalf("stats string = %q", sr.Stats)
	}
}

// TestEpochInvalidatesPlanCache alternates writes and queries: if a
// cached plan (built against an older epoch) were ever served after a
// write, the query would return the pre-write answer set. Every query
// must see exactly the writes that precede it.
func TestEpochInvalidatesPlanCache(t *testing.T) {
	h := Handler(liveTestKB(t))
	query := `{"query":"q(x) :- Student(x)"}`

	want := 2
	for i := 0; i < 8; i++ {
		// Warm the cache at the current epoch (twice: miss then hit).
		for j := 0; j < 2; j++ {
			rec := do(t, h, "POST", "/query", query)
			var qr QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
				t.Fatal(err)
			}
			if qr.Count != want {
				t.Fatalf("round %d pass %d: count = %d, want %d (stale plan served)", i, j, qr.Count, want)
			}
		}
		name := fmt.Sprintf("New%d", i)
		rec := do(t, h, "POST", "/insert", name+" a Student .\n"+name+" takesCourse DB101 .")
		if rec.Code != http.StatusOK {
			t.Fatalf("insert %d: %s", i, rec.Body)
		}
		want++
		// The very next query must include the write.
		rec = do(t, h, "POST", "/query", query)
		var qr QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Count != want {
			t.Fatalf("round %d: post-write count = %d, want %d (epoch not in cache key?)", i, qr.Count, want)
		}
	}

	// The cache did real work across epochs: hits on the warm pass.
	rec := do(t, h, "GET", "/stats", "")
	var sr StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.PlanCacheHits == 0 || sr.PlanCacheMisses == 0 {
		t.Fatalf("cache counters hits=%d misses=%d: epoch keying broke caching entirely", sr.PlanCacheHits, sr.PlanCacheMisses)
	}
}

// TestConcurrentWritersAndQueries is the live-data -race stress: writer
// goroutines hit /insert and /delete while query goroutines answer
// through the plan cache and others poll /stats. Assertions are
// monotonicity (a query never undercounts the writes it must have seen)
// plus whatever the race detector finds.
func TestConcurrentWritersAndQueries(t *testing.T) {
	kb := liveTestKB(t)
	h := Handler(kb)
	const writers = 3
	const writesPerWriter = 20

	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < writesPerWriter; i++ {
				name := fmt.Sprintf("W%dN%d", w, i)
				rec := do(t, h, "POST", "/insert", name+" a Student .\n"+name+" takesCourse DB101 .")
				if rec.Code != http.StatusOK {
					t.Errorf("insert: %s", rec.Body)
					return
				}
				if i%4 == 3 {
					rec = do(t, h, "POST", "/delete", name+" a Student .")
					if rec.Code != http.StatusOK {
						t.Errorf("delete: %s", rec.Body)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := do(t, h, "POST", "/query", `{"query":"q(x) :- Student(x), takesCourse(x, y)"}`)
				if rec.Code != http.StatusOK {
					t.Errorf("query: %s", rec.Body)
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
					t.Error(err)
					return
				}
				// takesCourse edges are never deleted, so the count of
				// students-with-courses a single reader observes can only
				// stay equal or grow... except deletes remove the Student
				// label of every 4th vertex. Bound it loosely instead:
				// never more than all inserted vertices + the base 2.
				if qr.Count > writers*writesPerWriter+2 {
					t.Errorf("impossible count %d", qr.Count)
					return
				}
				if qr.Count < 2 {
					t.Errorf("count %d dropped below the immutable base", qr.Count)
					return
				}
				rec = do(t, h, "GET", "/stats", "")
				if rec.Code != http.StatusOK {
					t.Errorf("stats: %s", rec.Body)
					return
				}
			}
		}()
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()
	kb.WaitIdle()

	// Quiesced: the final count is exact. Every vertex has takesCourse;
	// every 4th lost its Student label (PhD ⊑ Student covers none of
	// them), base contributes Ann (PhD, with an ontology-implied course)
	// and Bob.
	rec := do(t, h, "POST", "/query", `{"query":"q(x) :- Student(x), takesCourse(x, y)"}`)
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	perWriter := writesPerWriter - writesPerWriter/4
	want := writers*perWriter + 2
	if qr.Count != want {
		t.Fatalf("final count = %d, want %d", qr.Count, want)
	}
}

// TestCheckpointEndpoint drives POST /checkpoint on a durable KB and
// checks both the trigger (WAL truncated, stats updated) and the 403 on
// a live-but-in-memory KB.
func TestCheckpointEndpoint(t *testing.T) {
	// In-memory live KB: checkpointing has nowhere to write.
	h := Handler(liveTestKB(t))
	if rec := do(t, h, "POST", "/checkpoint", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("checkpoint on in-memory KB: status %d, want 403", rec.Code)
	}

	kb, err := ogpa.NewKB(strings.NewReader(`
Student SubClassOf some takesCourse
PhD SubClassOf Student
`), strings.NewReader(`
PhD(Ann)
`))
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableDurableLiveData(t.TempDir(), -1); err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	h = Handler(kb)

	rec := do(t, h, "POST", "/insert", "Carl a Student .")
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	var before StatsResponse
	if err := json.Unmarshal(do(t, h, "GET", "/stats", "").Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if !before.Durable || before.SnapshotBytes == 0 || before.WALBytes == 0 {
		t.Fatalf("durable stats incomplete before checkpoint: %+v", before)
	}

	rec = do(t, h, "POST", "/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", rec.Code, rec.Body)
	}
	var cr CheckpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Epoch != kb.Epoch() {
		t.Fatalf("checkpoint epoch %d, KB epoch %d", cr.Epoch, kb.Epoch())
	}
	if cr.WALBytes >= before.WALBytes {
		t.Fatalf("WAL not truncated: %d -> %d bytes", before.WALBytes, cr.WALBytes)
	}
	var after StatsResponse
	if err := json.Unmarshal(do(t, h, "GET", "/stats", "").Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.LastCheckpointEpoch != cr.Epoch {
		t.Fatalf("stats lastCheckpointEpoch = %d, want %d", after.LastCheckpointEpoch, cr.Epoch)
	}
}
