package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRequests fires overlapping requests at every endpoint from
// many goroutines sharing one Handler (and therefore one KB and one frozen
// symbol table). Run under -race this is the repository's concurrency
// audit: it exercises the lock-free symbol-table reads, the metrics mutex,
// and the per-request matcher state all at once.
func TestConcurrentRequests(t *testing.T) {
	h := Handler(testKB(t))

	requests := []struct {
		method, path, body string
		wantCode           int
	}{
		{"POST", "/query", `{"query":"q(x) :- Student(x), takesCourse(x, y)"}`, http.StatusOK},
		{"POST", "/query", `{"query":"q(x) :- PhD(x)"}`, http.StatusOK},
		{"POST", "/query", `{"query":"SELECT ?x WHERE { ?x a <http://e/Student> . }","sparql":true}`, http.StatusOK},
		{"POST", "/query", `{"query":"q(x) :- Student(x)","baseline":"datalog"}`, http.StatusOK},
		{"POST", "/query", `{"query":"q(x) :- Student(x)","baseline":"saturate"}`, http.StatusOK},
		{"POST", "/query", `{"query":"q(x) :- Student(x)","baseline":"perfectref+daf"}`, http.StatusOK},
		{"POST", "/query", `{"query":"q(x) :- takesCourse(x, y), takesCourse(x, z)","minimize":true}`, http.StatusOK},
		// Unknown labels must resolve through Lookup misses, never Intern.
		{"POST", "/query", `{"query":"q(x) :- NoSuchClass(x)"}`, http.StatusOK},
		{"POST", "/rewrite", `{"query":"q(x) :- takesCourse(x, y)"}`, http.StatusOK},
		{"GET", "/stats", "", http.StatusOK},
		{"GET", "/consistency", "", http.StatusOK},
		// Error paths share the metrics counters too.
		{"POST", "/query", `{"query":"not a query"}`, http.StatusBadRequest},
	}

	const workers = 16
	const rounds = 8

	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(requests))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger so goroutines overlap on different endpoints.
				for i := range requests {
					req := requests[(i+w)%len(requests)]
					var body *strings.Reader
					if req.body == "" {
						body = strings.NewReader("")
					} else {
						body = strings.NewReader(req.body)
					}
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(req.method, req.path, body))
					if rec.Code != req.wantCode {
						errs <- fmt.Errorf("%s %s %q: status %d, want %d: %s",
							req.method, req.path, req.body, rec.Code, req.wantCode, rec.Body)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The metrics counters must have seen every request exactly once.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	const perWorker = rounds * 9 // query endpoint hits per worker per round: 8 ok + 1 error
	if want := uint64(workers * perWorker); stats.Queries != want {
		t.Errorf("stats.Queries = %d, want %d", stats.Queries, want)
	}
	if want := uint64(workers * rounds); stats.Rewrites != want {
		t.Errorf("stats.Rewrites = %d, want %d", stats.Rewrites, want)
	}
	if want := uint64(workers * rounds); stats.Errors != want {
		t.Errorf("stats.Errors = %d, want %d", stats.Errors, want)
	}
}

// TestHandlerFreezesSymbols pins the serve-phase contract: after Handler
// wires up a KB, its symbol table is frozen and rejects new strings.
func TestHandlerFreezesSymbols(t *testing.T) {
	kb := testKB(t)
	Handler(kb)
	if !kb.Graph().Symbols.Frozen() {
		t.Fatal("Handler must freeze the KB's symbol table")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intern of a new string on a frozen table must panic")
		}
	}()
	kb.Graph().Symbols.Intern("brand-new-symbol")
}
