package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ogpa"
)

// SubscribeRequest is the body of POST /subscribe.
type SubscribeRequest struct {
	Query    string `json:"query"`
	Baseline string `json:"baseline,omitempty"` // "datalog" (default) or "saturate"
	// MaxRows caps this subscription's answer-set size; exceeding it
	// fails the subscription closed. 0 takes the server's configured
	// cap (Config.SubscriptionMaxRows), which also clamps larger asks.
	MaxRows int `json:"maxRows,omitempty"`
}

// SubscribeResponse is the body of a successful POST /subscribe.
type SubscribeResponse struct {
	ID       uint64   `json:"id"`
	Query    string   `json:"query"`
	Baseline string   `json:"baseline"`
	Vars     []string `json:"vars"`
}

// UnsubscribeResponse is the body of a successful DELETE /subscribe/{id}.
type UnsubscribeResponse struct {
	ID     uint64 `json:"id"`
	Closed bool   `json:"closed"`
}

// defaultPollTimeout bounds GET /subscribe/{id}/poll when the request
// does not pass timeoutMs: the long poll returns 204 after this long
// with no delta so intermediaries never see an unbounded request.
const defaultPollTimeout = 30 * time.Second

// registerSubscribeRoutes wires the standing-query endpoints:
//
//	POST   /subscribe              register a standing query
//	GET    /subscribe/{id}/poll    long-poll the next answer delta
//	GET    /subscribe/{id}/events  stream answer deltas as SSE
//	DELETE /subscribe/{id}         unsubscribe
//
// All four answer 403 until the KB runs with incremental maintenance
// (live data + EnableIncremental; `ogpaserver -live -subscribe`).
func registerSubscribeRoutes(mux *http.ServeMux, kb *ogpa.KB, cfg Config, m *metrics) {
	needInc := func(w http.ResponseWriter) bool {
		if kb.Incremental() {
			return true
		}
		m.recordError()
		writeError(w, http.StatusForbidden,
			fmt.Errorf("subscriptions need incremental maintenance: start the server with -live -subscribe"))
		return false
	}

	// resolve looks the path's subscription up; a miss is 404 (the id
	// never existed, was unsubscribed, or failed closed and was culled).
	resolve := func(w http.ResponseWriter, r *http.Request) (*ogpa.Subscription, bool) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			m.recordError()
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id: %w", err))
			return nil, false
		}
		s, ok := kb.SubscriptionByID(id)
		if !ok {
			m.recordError()
			writeError(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
			return nil, false
		}
		return s, true
	}

	mux.HandleFunc("POST /subscribe", func(w http.ResponseWriter, r *http.Request) {
		if !needInc(w) {
			return
		}
		var req SubscribeRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			m.recordError()
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if req.Query == "" {
			m.recordError()
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
			return
		}
		b := ogpa.BaselineDatalog
		if req.Baseline != "" {
			b = ogpa.Baseline(req.Baseline)
		}
		maxRows := req.MaxRows
		if cfg.SubscriptionMaxRows > 0 && (maxRows == 0 || maxRows > cfg.SubscriptionMaxRows) {
			maxRows = cfg.SubscriptionMaxRows
		}
		sub, err := kb.Subscribe(b, req.Query, ogpa.SubscribeOptions{MaxRows: maxRows})
		if err != nil {
			m.recordError()
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, SubscribeResponse{
			ID:       sub.ID(),
			Query:    sub.Query(),
			Baseline: string(sub.Baseline()),
			Vars:     sub.Vars(),
		})
	})

	mux.HandleFunc("GET /subscribe/{id}/poll", func(w http.ResponseWriter, r *http.Request) {
		if !needInc(w) {
			return
		}
		sub, ok := resolve(w, r)
		if !ok {
			return
		}
		timeout := defaultPollTimeout
		if ms := r.URL.Query().Get("timeoutMs"); ms != "" {
			n, err := strconv.Atoi(ms)
			if err != nil || n <= 0 {
				m.recordError()
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeoutMs %q", ms))
				return
			}
			timeout = time.Duration(n) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		d, err := sub.Next(ctx)
		switch {
		case err == nil:
			writeJSON(w, d)
		case errors.Is(err, ogpa.ErrSubscriptionClosed):
			m.recordError()
			writeError(w, http.StatusGone, err)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			// No delta within the window (or the client went away):
			// an empty long poll, not an error.
			w.WriteHeader(http.StatusNoContent)
		default:
			// Sticky evaluation failure: the subscription has failed
			// closed; surface the cause once per poll.
			m.recordError()
			writeError(w, http.StatusInternalServerError, err)
		}
	})

	mux.HandleFunc("GET /subscribe/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		if !needInc(w) {
			return
		}
		sub, ok := resolve(w, r)
		if !ok {
			return
		}
		fl, canFlush := w.(http.Flusher)
		if !canFlush {
			m.recordError()
			writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			d, err := sub.Next(r.Context())
			if err != nil {
				if errors.Is(err, ogpa.ErrSubscriptionClosed) {
					//lint:ignore droppederr best-effort stream write; the client may be gone and there is no channel left to report on
					_, _ = fmt.Fprint(w, "event: closed\ndata: {}\n\n")
					fl.Flush()
				} else if r.Context().Err() == nil {
					m.recordError()
					//lint:ignore droppederr best-effort stream write; the client may be gone and there is no channel left to report on
					_, _ = fmt.Fprintf(w, "event: error\ndata: %s\n\n", jsonString(err.Error()))
					fl.Flush()
				}
				return
			}
			body, err := json.Marshal(d)
			if err != nil {
				m.recordError()
				return
			}
			//lint:ignore droppederr best-effort stream write; a failed write surfaces as the request context closing
			_, _ = fmt.Fprintf(w, "event: delta\ndata: %s\n\n", body)
			fl.Flush()
		}
	})

	mux.HandleFunc("DELETE /subscribe/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !needInc(w) {
			return
		}
		sub, ok := resolve(w, r)
		if !ok {
			return
		}
		sub.Close()
		writeJSON(w, UnsubscribeResponse{ID: sub.ID(), Closed: true})
	})
}

// jsonString renders one string as a JSON literal for SSE data lines.
func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return []byte(`""`)
	}
	return b
}
