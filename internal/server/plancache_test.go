package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestPlanCacheAlternatingQueries is the correctness + reuse contract of
// the plan cache: two distinct queries alternated across repeated
// requests keep returning their own (correct) answers — cached plans
// never leak across keys — and the hit counter shows that every request
// after each query's first skipped GenOGP.
func TestPlanCacheAlternatingQueries(t *testing.T) {
	h := Handler(testKB(t))
	queries := []struct {
		body      string
		wantCount int
		wantFirst string
	}{
		{`{"query":"q(x) :- Student(x), takesCourse(x, y)"}`, 2, "Ann"},
		{`{"query":"q(x) :- PhD(x)"}`, 1, "Ann"},
	}
	const rounds = 4
	for round := 0; round < rounds; round++ {
		for qi, q := range queries {
			rec := do(t, h, "POST", "/query", q.body)
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d query %d: status %d: %s", round, qi, rec.Code, rec.Body)
			}
			var resp QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Count != q.wantCount || resp.Rows[0][0] != q.wantFirst {
				t.Fatalf("round %d query %d: resp = %+v, want count %d first %q",
					round, qi, resp, q.wantCount, q.wantFirst)
			}
		}
	}

	rec := do(t, h, "POST", "/query", `{"query":"q(x) :- Student(x)","baseline":"datalog"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline status %d: %s", rec.Code, rec.Body)
	}

	var stats StatsResponse
	rec = do(t, h, "GET", "/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	// Each query misses once (its first request) and hits on every later
	// round; the baseline request bypasses the cache entirely.
	wantMisses := uint64(len(queries))
	wantHits := uint64(len(queries) * (rounds - 1))
	if stats.PlanCacheMisses != wantMisses || stats.PlanCacheHits != wantHits {
		t.Fatalf("plan cache hits=%d misses=%d, want hits=%d misses=%d",
			stats.PlanCacheHits, stats.PlanCacheMisses, wantHits, wantMisses)
	}
	if stats.PlanCacheSize != len(queries) {
		t.Fatalf("plan cache size = %d, want %d", stats.PlanCacheSize, len(queries))
	}
}

// TestPlanCacheBaselineKinds: UCQ-baseline requests are cached alongside
// OGP plans under their own kind. Alternating the same query through the
// primary pipeline and the perfectref+daf baseline must (a) answer
// identically, (b) hit the cache on every round after the first for BOTH
// kinds, and (c) surface the split per kind in /stats, with the datalog
// baseline still bypassing the cache.
func TestPlanCacheBaselineKinds(t *testing.T) {
	h := Handler(testKB(t))
	requests := []struct {
		kind string
		body string
	}{
		{"cq", `{"query":"q(x) :- Student(x), takesCourse(x, y)"}`},
		{"ucq:perfectref+daf", `{"query":"q(x) :- Student(x), takesCourse(x, y)","baseline":"perfectref+daf"}`},
	}
	const rounds = 3
	var want string
	for round := 0; round < rounds; round++ {
		for _, rq := range requests {
			rec := do(t, h, "POST", "/query", rq.body)
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d kind %s: status %d: %s", round, rq.kind, rec.Code, rec.Body)
			}
			var resp QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			rows := fmt.Sprint(resp.Rows)
			if want == "" {
				want = rows
			} else if rows != want {
				t.Fatalf("round %d kind %s: rows %s diverge from %s", round, rq.kind, rows, want)
			}
		}
	}
	// One datalog request: same answers, but no cache traffic.
	rec := do(t, h, "POST", "/query", `{"query":"q(x) :- Student(x), takesCourse(x, y)","baseline":"datalog"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("datalog status %d: %s", rec.Code, rec.Body)
	}

	var stats StatsResponse
	rec = do(t, h, "GET", "/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	wantMisses := uint64(len(requests))
	wantHits := uint64(len(requests) * (rounds - 1))
	if stats.PlanCacheMisses != wantMisses || stats.PlanCacheHits != wantHits {
		t.Fatalf("plan cache hits=%d misses=%d, want hits=%d misses=%d",
			stats.PlanCacheHits, stats.PlanCacheMisses, wantHits, wantMisses)
	}
	if stats.PlanCacheSize != len(requests) {
		t.Fatalf("plan cache size = %d, want %d", stats.PlanCacheSize, len(requests))
	}
	for _, rq := range requests {
		ks, ok := stats.PlanCacheByKind[rq.kind]
		if !ok {
			t.Fatalf("kind %s missing from PlanCacheByKind %v", rq.kind, stats.PlanCacheByKind)
		}
		if ks.Hits != rounds-1 || ks.Misses != 1 || ks.Size != 1 {
			t.Fatalf("kind %s: hits=%d misses=%d size=%d, want %d/1/1",
				rq.kind, ks.Hits, ks.Misses, ks.Size, rounds-1)
		}
	}
	if len(stats.PlanCacheByKind) != len(requests) {
		t.Fatalf("PlanCacheByKind has %d kinds (%v), want %d — the datalog baseline must not touch the cache",
			len(stats.PlanCacheByKind), stats.PlanCacheByKind, len(requests))
	}
}

// TestPlanCacheDisabled pins the negative-capacity escape hatch: with
// caching off every request still answers correctly and the counters
// stay zero.
func TestPlanCacheDisabled(t *testing.T) {
	h := HandlerWithConfig(testKB(t), Config{PlanCacheSize: -1})
	for i := 0; i < 3; i++ {
		rec := do(t, h, "POST", "/query", `{"query":"q(x) :- PhD(x)"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	var stats StatsResponse
	rec := do(t, h, "GET", "/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PlanCacheHits != 0 || stats.PlanCacheMisses != 0 || stats.PlanCacheSize != 0 {
		t.Fatalf("disabled cache reported hits=%d misses=%d size=%d",
			stats.PlanCacheHits, stats.PlanCacheMisses, stats.PlanCacheSize)
	}
}

// TestPlanCacheLRUEviction pins the eviction order: with capacity 2 and
// three distinct queries in rotation, the least recently used plan is
// evicted, so a fourth request for it misses again.
func TestPlanCacheLRUEviction(t *testing.T) {
	h := HandlerWithConfig(testKB(t), Config{PlanCacheSize: 2})
	q := func(name string) string {
		return fmt.Sprintf(`{"query":"q(x) :- %s(x)"}`, name)
	}
	// A, B fill the cache; C evicts A; A misses again and evicts B.
	for _, name := range []string{"Student", "PhD", "Course", "Student"} {
		rec := do(t, h, "POST", "/query", q(name))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body)
		}
	}
	var stats StatsResponse
	rec := do(t, h, "GET", "/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PlanCacheMisses != 4 || stats.PlanCacheHits != 0 || stats.PlanCacheSize != 2 {
		t.Fatalf("hits=%d misses=%d size=%d, want 0/4/2",
			stats.PlanCacheHits, stats.PlanCacheMisses, stats.PlanCacheSize)
	}
}
