package cq

// Minimization computes the core of a conjunctive query: the smallest
// subquery equivalent to it. The paper's Remark (Section IV-B) reduces
// minimal-OGP generation to CQ minimization to show NP-hardness; this file
// provides the classic folding algorithm so callers can minimize queries
// before rewriting (a smaller query yields a smaller OGP and a cheaper
// match). Exponential in the worst case — like the problem itself — but
// the backtracking is over existential variables only and is fast for the
// query sizes of the paper's workloads (≤ 16 atoms).

// Minimize returns the core of q: an equivalent query with a minimal set
// of atoms. The head is preserved; only existential variables can be
// folded onto other variables.
func (q *Query) Minimize() *Query {
	cur := q.Clone()
	dedupAtomsInPlace(cur)
	for {
		next, changed := foldOnce(cur)
		if !changed {
			return cur
		}
		cur = next
	}
}

// foldOnce tries to find an endomorphism of q that is the identity on the
// head and avoids at least one atom; applying it yields a strictly smaller
// equivalent query. The substitution is applied in a single step (not
// chained): the found map is a homomorphism, not necessarily idempotent.
func foldOnce(q *Query) (*Query, bool) {
	for drop := range q.Atoms {
		sigma := foldAvoiding(q, drop)
		if sigma == nil {
			continue
		}
		img := func(v string) string {
			if w, ok := sigma[v]; ok {
				return w
			}
			return v
		}
		out := &Query{Name: q.Name, Head: append([]string(nil), q.Head...)}
		for _, a := range q.Atoms {
			b := a
			b.X = img(a.X)
			if a.IsRole {
				b.Y = img(a.Y)
			}
			out.Atoms = append(out.Atoms, b)
		}
		dedupAtomsInPlace(out)
		// The image lies inside q minus the dropped atom, so it is
		// strictly smaller.
		return out, true
	}
	return q, false
}

// foldAvoiding searches for a homomorphism from q into q \ {atom drop}
// fixing distinguished variables. The returned map sends each variable to
// its image.
func foldAvoiding(q *Query, drop int) map[string]string {
	var targets []Atom
	for i, a := range q.Atoms {
		if i != drop {
			targets = append(targets, a)
		}
	}
	sigma := map[string]string{}
	for _, h := range q.Head {
		sigma[h] = h
	}
	var match func(i int) bool
	bind := func(x, y string) (ok, added bool) {
		if img, has := sigma[x]; has {
			return img == y, false
		}
		sigma[x] = y
		return true, true
	}
	match = func(i int) bool {
		if i == len(q.Atoms) {
			return true
		}
		ga := q.Atoms[i]
		for _, gb := range targets {
			if ga.Pred != gb.Pred || ga.IsRole != gb.IsRole {
				continue
			}
			pairs := [][2]string{{ga.X, gb.X}}
			if ga.IsRole {
				pairs = append(pairs, [2]string{ga.Y, gb.Y})
			}
			var added []string
			ok := true
			for _, p := range pairs {
				okp, addedp := bind(p[0], p[1])
				if addedp {
					added = append(added, p[0])
				}
				if !okp {
					ok = false
					break
				}
			}
			if ok && match(i+1) {
				return true
			}
			for _, x := range added {
				delete(sigma, x)
			}
		}
		return false
	}
	if match(0) {
		return sigma
	}
	return nil
}

func dedupAtomsInPlace(q *Query) {
	seen := make(map[Atom]bool, len(q.Atoms))
	w := 0
	for _, a := range q.Atoms {
		if !seen[a] {
			seen[a] = true
			q.Atoms[w] = a
			w++
		}
	}
	q.Atoms = q.Atoms[:w]
}

// ContainedIn reports whether q's answers are contained in p's on every
// dataset (classic CQ containment: a homomorphism from p into q fixing the
// head). Exposed for query-optimization callers; NP-complete in general,
// fast at the paper's query sizes.
func (q *Query) ContainedIn(p *Query) bool {
	if len(q.Head) != len(p.Head) {
		return false
	}
	// Rename p's head to q's (containment compares by head position).
	ren := map[string]string{}
	for i, h := range p.Head {
		ren[h] = q.Head[i]
	}
	pr := p.Clone()
	for i, a := range pr.Atoms {
		if v, ok := ren[a.X]; ok {
			pr.Atoms[i].X = v
		}
		if a.IsRole {
			if v, ok := ren[a.Y]; ok {
				pr.Atoms[i].Y = v
			}
		}
	}
	pr.Head = append([]string(nil), q.Head...)
	sigma := foldAvoidingInto(pr, q)
	return sigma != nil
}

// foldAvoidingInto finds a homomorphism from a into b fixing a's
// distinguished variables (which must be variables of b).
func foldAvoidingInto(a, b *Query) map[string]string {
	sigma := map[string]string{}
	for _, h := range a.Head {
		sigma[h] = h
	}
	var match func(i int) bool
	match = func(i int) bool {
		if i == len(a.Atoms) {
			return true
		}
		ga := a.Atoms[i]
		for _, gb := range b.Atoms {
			if ga.Pred != gb.Pred || ga.IsRole != gb.IsRole {
				continue
			}
			pairs := [][2]string{{ga.X, gb.X}}
			if ga.IsRole {
				pairs = append(pairs, [2]string{ga.Y, gb.Y})
			}
			var added []string
			ok := true
			for _, p := range pairs {
				if img, has := sigma[p[0]]; has {
					if img != p[1] {
						ok = false
						break
					}
					continue
				}
				sigma[p[0]] = p[1]
				added = append(added, p[0])
			}
			if ok && match(i+1) {
				return true
			}
			for _, x := range added {
				delete(sigma, x)
			}
		}
		return false
	}
	if match(0) {
		return sigma
	}
	return nil
}
