package cq

import (
	"strings"
	"testing"
)

// The running example of the paper (Example 3).
const example3 = `q(x) :- advisorOf(y1, x), advisorOf(y1, y2), advisorOf(y1, y3), takesCourse(x, z)`

func TestParseExample3(t *testing.T) {
	q, err := Parse(example3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Head) != 1 || q.Head[0] != "x" {
		t.Fatalf("head = %v", q.Head)
	}
	if q.Size() != 4 {
		t.Fatalf("Size = %d", q.Size())
	}
	if !q.Atoms[0].IsRole || q.Atoms[0].Pred != "advisorOf" || q.Atoms[0].X != "y1" || q.Atoms[0].Y != "x" {
		t.Fatalf("atom 0 = %+v", q.Atoms[0])
	}
	if !q.Connected() {
		t.Fatal("example 3 is connected")
	}
}

func TestParseConceptAtomsAndAnon(t *testing.T) {
	q := MustParse(`q(x) :- Student(x), takesCourse(x, _), takesCourse(x, _).`)
	if q.Size() != 3 {
		t.Fatalf("Size = %d", q.Size())
	}
	if q.Atoms[0].IsRole {
		t.Fatal("Student(x) parsed as role")
	}
	// The two '_' must be distinct fresh variables.
	if q.Atoms[1].Y == q.Atoms[2].Y {
		t.Fatal("anonymous variables must be distinct")
	}
	unb := q.Unbound()
	if !unb[q.Atoms[1].Y] || !unb[q.Atoms[2].Y] {
		t.Fatalf("anonymous variables should be unbound: %v", unb)
	}
	if unb["x"] {
		t.Fatal("x is distinguished, not unbound")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"q(x)",                      // no body
		"q(x) :- ",                  // empty body
		"q(_) :- Student(_)",        // anonymous head
		"q(x) :- Student(y)",        // head var not in body
		"q(x) :- P(x, y, z)",        // arity 3
		"q(x) :- (x)",               // missing predicate
		"q(x) :- P()",               // empty args
		"q(x) :- P(x,)",             // empty arg
		"no-colon-dash q(x) P(x,y)", // missing :-
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	q := MustParse(example3)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q", q2.String(), q.String())
	}
}

func TestOccurrencesAndUnbound(t *testing.T) {
	q := MustParse(example3)
	occ := q.Occurrences()
	if occ["y1"] != 3 || occ["x"] != 2 || occ["y2"] != 1 || occ["z"] != 1 {
		t.Fatalf("occ = %v", occ)
	}
	unb := q.Unbound()
	if !unb["y2"] || !unb["y3"] || !unb["z"] || unb["y1"] || unb["x"] {
		t.Fatalf("unbound = %v", unb)
	}
}

func TestVarsOrder(t *testing.T) {
	q := MustParse(example3)
	vars := q.Vars()
	if vars[0] != "x" { // head first
		t.Fatalf("vars = %v", vars)
	}
	if len(vars) != 5 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestConnected(t *testing.T) {
	q := MustParse(`q(x) :- P(x, y), Q(a, b)`)
	if q.Connected() {
		t.Fatal("disconnected query reported connected")
	}
	q2 := MustParse(`q(x) :- Student(x)`)
	if !q2.Connected() {
		t.Fatal("single-atom query is trivially connected")
	}
}

func TestUnify(t *testing.T) {
	q := MustParse(`q(x) :- advisorOf(y1, x), advisorOf(y1, y2)`)
	sigma := q.Unify(q.Atoms[0], q.Atoms[1])
	if sigma == nil {
		t.Fatal("atoms should unify")
	}
	// y2 (existential) must map to x (distinguished), never the reverse.
	if sigma.Resolve("y2") != "x" {
		t.Fatalf("sigma = %v", sigma)
	}
	red := q.Apply(sigma)
	if red.Size() != 1 {
		t.Fatalf("reduced query = %v", red)
	}
	if red.Atoms[0] != RoleAtom("advisorOf", "y1", "x") {
		t.Fatalf("reduced atom = %v", red.Atoms[0])
	}
}

func TestUnifyFailures(t *testing.T) {
	q := MustParse(`q(x, y) :- P(x, a), P(y, a), Q(x, y), R(x)`)
	// Distinguished x and y cannot be merged.
	if sigma := q.Unify(q.Atoms[0], q.Atoms[1]); sigma != nil {
		t.Fatalf("x/y should not unify: %v", sigma)
	}
	// Different predicates never unify.
	if q.Unify(q.Atoms[0], q.Atoms[2]) != nil {
		t.Fatal("P and Q should not unify")
	}
	// Role vs concept never unify.
	if q.Unify(q.Atoms[0], q.Atoms[3]) != nil {
		t.Fatal("role and concept should not unify")
	}
}

func TestUnifySharedChain(t *testing.T) {
	// P(a,b) and P(b,c): mgu must chain a→b→c consistently.
	q := MustParse(`q(x) :- P(a, b), P(b, c), R(x, a)`)
	sigma := q.Unify(q.Atoms[0], q.Atoms[1])
	if sigma == nil {
		t.Fatal("should unify")
	}
	red := q.Apply(sigma)
	// After applying, both P atoms collapse to one with equal endpoints.
	if red.Size() != 2 {
		t.Fatalf("reduced = %v", red)
	}
	pa := red.Atoms[0]
	if pa.X != pa.Y {
		t.Fatalf("chained unification should equate endpoints: %v", pa)
	}
}

func TestCanonicalDedup(t *testing.T) {
	a := MustParse(`q(x) :- advisorOf(y1, x), takesCourse(x, z)`)
	b := MustParse(`q(x) :- takesCourse(x, w), advisorOf(v, x)`)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("renamed/reordered queries should share a canonical form:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := MustParse(`q(x) :- advisorOf(x, y1), takesCourse(x, z)`) // direction flipped
	if a.Canonical() == c.Canonical() {
		t.Fatal("direction flip must change the canonical form")
	}
	d := MustParse(`q(z) :- advisorOf(y1, z), takesCourse(z, w)`)
	if a.Canonical() == d.Canonical() {
		t.Fatal("different distinguished variable names must differ")
	}
}

func TestClone(t *testing.T) {
	q := MustParse(example3)
	c := q.Clone()
	c.Atoms[0].Pred = "mutated"
	c.Head[0] = "mutated"
	if q.Atoms[0].Pred == "mutated" || q.Head[0] == "mutated" {
		t.Fatal("Clone must deep-copy")
	}
}

func TestAtomHelpers(t *testing.T) {
	a := ConceptAtom("Student", "x")
	if got := a.Vars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Vars = %v", got)
	}
	r := RoleAtom("P", "x", "y")
	if got := r.Vars(); len(got) != 2 || got[1] != "y" {
		t.Fatalf("Vars = %v", got)
	}
	if !strings.Contains(r.String(), "P(x, y)") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a query")
}
