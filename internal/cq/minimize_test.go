package cq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMinimizeRedundantStar(t *testing.T) {
	// The paper's Example 3 shape with T = ∅: the advisorOf star folds to
	// one edge (y2, y3 map onto x).
	q := MustParse(`q(x) :- advisorOf(y1, x), advisorOf(y1, y2), advisorOf(y1, y3), takesCourse(x, z)`)
	m := q.Minimize()
	if m.Size() != 2 {
		t.Fatalf("core has %d atoms, want 2: %s", m.Size(), m)
	}
}

func TestMinimizeAlreadyCore(t *testing.T) {
	q := MustParse(`q(x, y) :- advisorOf(x, y), takesCourse(y, z)`)
	m := q.Minimize()
	if m.Size() != 2 {
		t.Fatalf("core changed a minimal query: %s", m)
	}
}

func TestMinimizePreservesHead(t *testing.T) {
	// Distinguished variables must never be folded away.
	q := MustParse(`q(x, y) :- p(x, z), p(x, y)`)
	m := q.Minimize()
	if len(m.Head) != 2 || m.Head[0] != "x" || m.Head[1] != "y" {
		t.Fatalf("head changed: %v", m.Head)
	}
	// z is existential: p(x,z) folds onto p(x,y).
	if m.Size() != 1 {
		t.Fatalf("core = %s", m)
	}
	if m.Atoms[0].Y != "y" {
		t.Fatalf("fold went the wrong way: %s", m)
	}
}

func TestMinimizeCycleNotFoldable(t *testing.T) {
	// A directed 3-cycle has no endomorphism onto a proper subset when
	// tied to a distinguished vertex.
	q := MustParse(`q(x) :- p(x, y), p(y, z), p(z, x)`)
	m := q.Minimize()
	if m.Size() != 3 {
		t.Fatalf("cycle folded incorrectly: %s", m)
	}
}

func TestMinimizeSelfLoopAbsorbsCycle(t *testing.T) {
	// With a self loop present and no head anchors, the cycle folds into
	// the loop.
	q := &Query{Name: "b", Atoms: []Atom{
		RoleAtom("p", "a", "a"),
		RoleAtom("p", "x", "y"),
		RoleAtom("p", "y", "x"),
	}}
	m := q.Minimize()
	if m.Size() != 1 || m.Atoms[0] != RoleAtom("p", "a", "a") {
		t.Fatalf("core = %s", m)
	}
}

func TestMinimizeDuplicateAtoms(t *testing.T) {
	q := &Query{Name: "q", Head: []string{"x"}, Atoms: []Atom{
		RoleAtom("p", "x", "y"),
		RoleAtom("p", "x", "y"),
	}}
	m := q.Minimize()
	if m.Size() != 1 {
		t.Fatalf("duplicates survived: %s", m)
	}
}

// TestMinimizeEquivalence: on random queries, the core must be equivalent
// to the original (mutual homomorphism fixing the head).
func TestMinimizeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := []string{"p", "q"}
		vars := []string{"x", "y", "z", "w", "v"}
		var atoms []string
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			a, b := vars[rng.Intn(i+1)], vars[i+1]
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			atoms = append(atoms, fmt.Sprintf("%s(%s, %s)", preds[rng.Intn(2)], a, b))
		}
		q := MustParse("q(x) :- " + strings.Join(atoms, ", "))
		m := q.Minimize()
		if m.Size() > q.Size() {
			return false
		}
		// m ⊆ q and q ⊆ m must both hold (homomorphic equivalence).
		return homInto(m, q) && homInto(q, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// homInto reports a homomorphism from a into b fixing distinguished vars.
func homInto(a, b *Query) bool {
	sigma := map[string]string{}
	for _, h := range a.Head {
		sigma[h] = h
	}
	var match func(i int) bool
	match = func(i int) bool {
		if i == len(a.Atoms) {
			return true
		}
		ga := a.Atoms[i]
		for _, gb := range b.Atoms {
			if ga.Pred != gb.Pred || ga.IsRole != gb.IsRole {
				continue
			}
			pairs := [][2]string{{ga.X, gb.X}}
			if ga.IsRole {
				pairs = append(pairs, [2]string{ga.Y, gb.Y})
			}
			var added []string
			ok := true
			for _, p := range pairs {
				if img, has := sigma[p[0]]; has {
					if img != p[1] {
						ok = false
						break
					}
					continue
				}
				sigma[p[0]] = p[1]
				added = append(added, p[0])
			}
			if ok && match(i+1) {
				return true
			}
			for _, x := range added {
				delete(sigma, x)
			}
		}
		return false
	}
	return match(0)
}

func TestContainedIn(t *testing.T) {
	narrow := MustParse(`q(x) :- p(x, y), A(y)`)
	wide := MustParse(`q(x) :- p(x, y)`)
	if !narrow.ContainedIn(wide) {
		t.Fatal("narrow ⊆ wide should hold")
	}
	if wide.ContainedIn(narrow) {
		t.Fatal("wide ⊆ narrow should not hold")
	}
	// Head renaming: containment is positional.
	renamed := MustParse(`q(z) :- p(z, w)`)
	if !narrow.ContainedIn(renamed) || !renamed.ContainedIn(wide) {
		t.Fatal("renamed heads must compare positionally")
	}
	// Arity mismatch.
	pair := MustParse(`q(x, y) :- p(x, y)`)
	if pair.ContainedIn(wide) || wide.ContainedIn(pair) {
		t.Fatal("different head arities are incomparable")
	}
	// Equivalent queries contain each other.
	a := MustParse(`q(x) :- p(x, y), p(x, z)`)
	if !a.ContainedIn(wide) || !wide.ContainedIn(a) {
		t.Fatal("homomorphically equivalent queries must be mutually contained")
	}
}
