// Package cq implements conjunctive queries over DL-Lite knowledge bases
// (paper Section II): q(x̄) = ∃ȳ.φ(x̄, ȳ) where φ is a conjunction of
// concept atoms A(x) and role atoms P(x, y).
//
// Variables occurring exactly once that are not distinguished are *unbound*
// (the paper writes them '_'); the parser assigns each written '_' a fresh
// name so unboundness is purely an occurrence-count property. The package
// also provides the most-general-unifier machinery used by PerfectRef's
// Reduction step and a cheap canonical form used to deduplicate queries.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is A(x) (IsRole == false, Y == "") or P(x, y) (IsRole == true).
type Atom struct {
	Pred   string
	IsRole bool
	X, Y   string
}

// ConceptAtom builds A(x).
func ConceptAtom(pred, x string) Atom { return Atom{Pred: pred, X: x} }

// RoleAtom builds P(x, y).
func RoleAtom(pred, x, y string) Atom { return Atom{Pred: pred, IsRole: true, X: x, Y: y} }

func (a Atom) String() string {
	if !a.IsRole {
		return fmt.Sprintf("%s(%s)", a.Pred, a.X)
	}
	return fmt.Sprintf("%s(%s, %s)", a.Pred, a.X, a.Y)
}

// Vars returns the variables of the atom (1 or 2 entries).
func (a Atom) Vars() []string {
	if !a.IsRole {
		return []string{a.X}
	}
	return []string{a.X, a.Y}
}

// Query is a conjunctive query with distinguished variables Head.
type Query struct {
	Name  string
	Head  []string
	Atoms []Atom
}

func (q *Query) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Head, ", "))
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Size reports |q|: the number of atoms.
func (q *Query) Size() int { return len(q.Atoms) }

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	out := &Query{Name: q.Name}
	out.Head = append([]string(nil), q.Head...)
	out.Atoms = append([]Atom(nil), q.Atoms...)
	return out
}

// Vars returns all variables in order of first occurrence (head first).
func (q *Query) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Head {
		add(v)
	}
	for _, a := range q.Atoms {
		add(a.X)
		if a.IsRole {
			add(a.Y)
		}
	}
	return out
}

// Occurrences counts, per variable, how many atom argument positions
// mention it.
func (q *Query) Occurrences() map[string]int {
	occ := make(map[string]int)
	for _, a := range q.Atoms {
		occ[a.X]++
		if a.IsRole {
			occ[a.Y]++
		}
	}
	return occ
}

// IsDistinguished reports whether v is in the head.
func (q *Query) IsDistinguished(v string) bool {
	for _, h := range q.Head {
		if h == v {
			return true
		}
	}
	return false
}

// Unbound returns the set of unbound variables: existential variables that
// occur exactly once in the body.
func (q *Query) Unbound() map[string]bool {
	occ := q.Occurrences()
	out := make(map[string]bool)
	for v, n := range occ {
		if n == 1 && !q.IsDistinguished(v) {
			out[v] = true
		}
	}
	return out
}

// Connected reports whether the query's Gaifman graph is connected
// (the paper considers connected patterns w.l.o.g.).
func (q *Query) Connected() bool {
	vars := q.Vars()
	if len(vars) <= 1 {
		return true
	}
	parent := make(map[string]string, len(vars))
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, v := range vars {
		parent[v] = v
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, a := range q.Atoms {
		if a.IsRole {
			union(a.X, a.Y)
		}
	}
	root := find(vars[0])
	for _, v := range vars[1:] {
		if find(v) != root {
			return false
		}
	}
	return true
}

// Substitution maps variables to variables.
type Substitution map[string]string

// Resolve follows the substitution chain for v.
func (s Substitution) Resolve(v string) string {
	for {
		w, ok := s[v]
		if !ok || w == v {
			return v
		}
		v = w
	}
}

// Unify computes the most general unifier of two atoms of q, treating
// distinguished variables as constants (they unify only with existential
// variables or themselves). It returns nil when the atoms do not unify.
func (q *Query) Unify(a1, a2 Atom) Substitution {
	if a1.Pred != a2.Pred || a1.IsRole != a2.IsRole {
		return nil
	}
	sigma := Substitution{}
	pairs := [][2]string{{a1.X, a2.X}}
	if a1.IsRole {
		pairs = append(pairs, [2]string{a1.Y, a2.Y})
	}
	for _, p := range pairs {
		s, t := sigma.Resolve(p[0]), sigma.Resolve(p[1])
		switch {
		case s == t:
		case !q.IsDistinguished(s):
			sigma[s] = t
		case !q.IsDistinguished(t):
			sigma[t] = s
		default:
			return nil
		}
	}
	return sigma
}

// Apply applies a substitution, dropping duplicate atoms. The head is left
// untouched (distinguished variables are never substituted away by Unify).
func (q *Query) Apply(sigma Substitution) *Query {
	out := &Query{Name: q.Name, Head: append([]string(nil), q.Head...)}
	seen := make(map[Atom]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		b := a
		b.X = sigma.Resolve(a.X)
		if a.IsRole {
			b.Y = sigma.Resolve(a.Y)
		}
		if !seen[b] {
			seen[b] = true
			out.Atoms = append(out.Atoms, b)
		}
	}
	return out
}

// Canonical returns a canonical string for the query up to a cheap renaming
// of existential variables. It is sound for deduplication (equal strings ⇒
// equivalent queries); it may fail to identify some isomorphic queries,
// which only costs duplicate work, never correctness.
func (q *Query) Canonical() string {
	// Signature pass: distinguished vars keep their name; existential vars
	// get the sorted multiset of (pred, position) occurrences.
	sig := make(map[string]string)
	occ := make(map[string][]string)
	for _, a := range q.Atoms {
		occ[a.X] = append(occ[a.X], a.Pred+"/0")
		if a.IsRole {
			occ[a.Y] = append(occ[a.Y], a.Pred+"/1")
		}
	}
	for v, os := range occ {
		if q.IsDistinguished(v) {
			sig[v] = "!" + v
			continue
		}
		sort.Strings(os)
		sig[v] = strings.Join(os, ";")
	}
	atoms := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		if a.IsRole {
			atoms[i] = fmt.Sprintf("%s(%s,%s)", a.Pred, sig[a.X], sig[a.Y])
		} else {
			atoms[i] = fmt.Sprintf("%s(%s)", a.Pred, sig[a.X])
		}
	}
	sort.Strings(atoms)
	// Renaming pass: number existentials by first occurrence in the sorted
	// atom list, qualified by their signature.
	return strings.Join(atoms, "&")
}
