package cq

import (
	"fmt"
	"strings"
)

// Parse reads a query in datalog-ish syntax:
//
//	q(x) :- advisorOf(y1, x), advisorOf(y1, _), takesCourse(x, z), Student(x).
//
// Concept vs role atoms are distinguished by arity. Each written '_' becomes
// a fresh anonymous variable. The trailing period is optional.
func Parse(src string) (*Query, error) {
	src = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), "."))
	head, body, ok := strings.Cut(src, ":-")
	if !ok {
		return nil, fmt.Errorf("cq: missing ':-' in %q", src)
	}
	q := &Query{}
	name, args, err := parseCall(strings.TrimSpace(head))
	if err != nil {
		return nil, fmt.Errorf("cq: head: %w", err)
	}
	q.Name = name
	anon := 0
	fresh := func() string {
		anon++
		return fmt.Sprintf("_%d", anon)
	}
	for _, a := range args {
		if a == "_" {
			return nil, fmt.Errorf("cq: '_' cannot be distinguished")
		}
		q.Head = append(q.Head, a)
	}
	for _, call := range splitCalls(body) {
		call = strings.TrimSpace(call)
		if call == "" {
			continue
		}
		pred, args, err := parseCall(call)
		if err != nil {
			return nil, fmt.Errorf("cq: body: %w", err)
		}
		for i, a := range args {
			if a == "_" {
				args[i] = fresh()
			}
		}
		switch len(args) {
		case 1:
			q.Atoms = append(q.Atoms, ConceptAtom(pred, args[0]))
		case 2:
			q.Atoms = append(q.Atoms, RoleAtom(pred, args[0], args[1]))
		default:
			return nil, fmt.Errorf("cq: atom %q has arity %d, want 1 or 2", call, len(args))
		}
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("cq: empty body")
	}
	for _, h := range q.Head {
		found := false
		for _, a := range q.Atoms {
			if a.X == h || (a.IsRole && a.Y == h) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cq: distinguished variable %s does not occur in the body", h)
		}
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and fixed query sets.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func parseCall(s string) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	if pred == "" || strings.ContainsAny(pred, " \t,()") {
		return "", nil, fmt.Errorf("malformed predicate in %q", s)
	}
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return "", nil, fmt.Errorf("empty argument list in %q", s)
	}
	parts := strings.Split(inner, ",")
	args := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" || strings.ContainsAny(p, " \t()") {
			return "", nil, fmt.Errorf("malformed argument in %q", s)
		}
		args = append(args, p)
	}
	return pred, args, nil
}

// splitCalls splits the body on commas that are not inside parentheses.
func splitCalls(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
