// Package sparql parses the SPARQL fragment that corresponds to
// conjunctive queries — SELECT (DISTINCT) over a basic graph pattern —
// into cq.Query values. The paper's real-life workload (the LSQ query log)
// and the LUBM/OWL2Bench benchmark queries are shipped as SPARQL; this
// parser makes them loadable directly.
//
// Supported:
//
//	PREFIX ns: <http://...>
//	SELECT ?x ?y WHERE {
//	    ?x rdf:type ub:Student .
//	    ?x ub:takesCourse ?y .
//	    ?x ub:memberOf <http://www.Department0.University0.edu> .
//	}
//
// Triple patterns with `a` or rdf:type and an IRI object become concept
// atoms; other triples become role atoms. Constant subjects/objects are
// not part of the paper's CQ dialect and are rejected with a clear error
// (the paper's queries are constant-free). OPTIONAL, FILTER, UNION and
// property paths are out of scope and rejected.
package sparql

import (
	"fmt"
	"strings"

	"ogpa/internal/cq"
	"ogpa/internal/rdf"
)

// Parse converts a SPARQL SELECT query over a basic graph pattern into a
// conjunctive query.
func Parse(src string) (*cq.Query, error) {
	p := &parser{src: src}
	return p.parse()
}

type parser struct {
	src      string
	prefixes map[string]string
}

func (p *parser) parse() (*cq.Query, error) {
	p.prefixes = map[string]string{
		"rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	}
	rest := strings.TrimSpace(p.src)

	// PREFIX declarations.
	for {
		lower := strings.ToLower(rest)
		if !strings.HasPrefix(lower, "prefix") {
			break
		}
		line := rest[len("prefix"):]
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("sparql: malformed PREFIX")
		}
		name := strings.TrimSpace(line[:colon])
		line = strings.TrimSpace(line[colon+1:])
		if !strings.HasPrefix(line, "<") {
			return nil, fmt.Errorf("sparql: PREFIX %s lacks an IRI", name)
		}
		end := strings.IndexByte(line, '>')
		if end < 0 {
			return nil, fmt.Errorf("sparql: unterminated PREFIX IRI")
		}
		p.prefixes[name] = line[1:end]
		rest = strings.TrimSpace(line[end+1:])
	}

	lower := strings.ToLower(rest)
	if !strings.HasPrefix(lower, "select") {
		return nil, fmt.Errorf("sparql: only SELECT queries are supported")
	}
	rest = strings.TrimSpace(rest[len("select"):])
	lower = strings.ToLower(rest)
	if strings.HasPrefix(lower, "distinct") {
		rest = strings.TrimSpace(rest[len("distinct"):])
	}

	whereIdx := strings.Index(strings.ToLower(rest), "where")
	if whereIdx < 0 {
		return nil, fmt.Errorf("sparql: missing WHERE")
	}
	head := strings.Fields(rest[:whereIdx])
	body := strings.TrimSpace(rest[whereIdx+len("where"):])

	q := &cq.Query{Name: "q"}
	if len(head) == 1 && head[0] == "*" {
		head = nil // filled from the pattern below
	}
	for _, h := range head {
		v, err := varName(h)
		if err != nil {
			return nil, err
		}
		q.Head = append(q.Head, v)
	}

	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("sparql: WHERE block must be braced")
	}
	body = body[1 : len(body)-1]
	for _, kw := range []string{"optional", "filter", "union", "graph {", "minus"} {
		if strings.Contains(strings.ToLower(body), kw) {
			return nil, fmt.Errorf("sparql: %s is outside the CQ fragment", strings.ToUpper(strings.TrimSuffix(kw, " {")))
		}
	}

	anon := 0
	for _, stmt := range splitStatements(body) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		terms, err := p.terms(stmt)
		if err != nil {
			return nil, err
		}
		if len(terms) != 3 {
			return nil, fmt.Errorf("sparql: triple pattern %q has %d terms", stmt, len(terms))
		}
		s, pr, o := terms[0], terms[1], terms[2]
		if !s.isVar {
			return nil, fmt.Errorf("sparql: constant subject %q not in the CQ fragment", s.text)
		}
		subj := s.text
		if subj == "_" {
			anon++
			subj = fmt.Sprintf("_s%d", anon)
		}
		if pr.isVar {
			return nil, fmt.Errorf("sparql: variable predicates are not supported")
		}
		pred := rdf.LocalName(pr.text)
		if pr.text == rdf.TypePredicate || pr.text == "a" {
			if o.isVar {
				return nil, fmt.Errorf("sparql: variable classes are not supported")
			}
			q.Atoms = append(q.Atoms, cq.ConceptAtom(rdf.LocalName(o.text), subj))
			continue
		}
		if !o.isVar {
			return nil, fmt.Errorf("sparql: constant object %q not in the CQ fragment", o.text)
		}
		obj := o.text
		if obj == "_" {
			anon++
			obj = fmt.Sprintf("_s%d", anon)
		}
		q.Atoms = append(q.Atoms, cq.RoleAtom(pred, subj, obj))
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("sparql: empty basic graph pattern")
	}
	if q.Head == nil { // SELECT *
		q.Head = q.Vars()
	}
	for _, h := range q.Head {
		found := false
		for _, a := range q.Atoms {
			if a.X == h || (a.IsRole && a.Y == h) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sparql: projected variable ?%s not in the pattern", h)
		}
	}
	return q, nil
}

// splitStatements splits a basic graph pattern on the '.' separators,
// ignoring dots inside IRIs.
func splitStatements(body string) []string {
	var out []string
	start := 0
	inIRI := false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '<':
			inIRI = true
		case '>':
			inIRI = false
		case '.':
			if !inIRI {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}

type term struct {
	text  string
	isVar bool
}

// terms tokenizes one triple pattern.
func (p *parser) terms(stmt string) ([]term, error) {
	var out []term
	rest := stmt
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return out, nil
		}
		switch {
		case rest[0] == '?' || rest[0] == '$':
			end := strings.IndexAny(rest, " \t\n")
			if end < 0 {
				end = len(rest)
			}
			v, err := varName(rest[:end])
			if err != nil {
				return nil, err
			}
			out = append(out, term{text: v, isVar: true})
			rest = rest[end:]
		case rest[0] == '<':
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI in %q", stmt)
			}
			out = append(out, term{text: rest[1:end]})
			rest = rest[end+1:]
		case rest[0] == '"':
			return nil, fmt.Errorf("sparql: literals are not in the CQ fragment (%q)", stmt)
		case rest[0] == '[':
			return nil, fmt.Errorf("sparql: blank-node syntax is not supported (%q)", stmt)
		default:
			end := strings.IndexAny(rest, " \t\n")
			if end < 0 {
				end = len(rest)
			}
			word := rest[:end]
			rest = rest[end:]
			if word == "a" {
				out = append(out, term{text: "a"})
				continue
			}
			colon := strings.IndexByte(word, ':')
			if colon < 0 {
				return nil, fmt.Errorf("sparql: unexpected token %q", word)
			}
			ns, ok := p.prefixes[word[:colon]]
			if !ok {
				return nil, fmt.Errorf("sparql: undeclared prefix %q", word[:colon])
			}
			out = append(out, term{text: ns + word[colon+1:]})
		}
	}
}

func varName(tok string) (string, error) {
	if len(tok) < 2 || (tok[0] != '?' && tok[0] != '$') {
		return "", fmt.Errorf("sparql: %q is not a variable", tok)
	}
	return tok[1:], nil
}
