package sparql

import (
	"strings"
	"testing"
)

// lubmQ2 is (a CQ-fragment version of) LUBM benchmark query 2.
const lubmQ2 = `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x ?y ?z WHERE {
    ?x rdf:type ub:GraduateStudent .
    ?y rdf:type ub:University .
    ?z rdf:type ub:Department .
    ?x ub:memberOf ?z .
    ?z ub:subOrganizationOf ?y .
    ?x ub:undergraduateDegreeFrom ?y .
}`

func TestParseLUBMQ2(t *testing.T) {
	q, err := Parse(lubmQ2)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 3 || q.Head[0] != "x" || q.Head[2] != "z" {
		t.Fatalf("head = %v", q.Head)
	}
	if q.Size() != 6 {
		t.Fatalf("atoms = %d", q.Size())
	}
	var concepts, roles int
	for _, a := range q.Atoms {
		if a.IsRole {
			roles++
		} else {
			concepts++
		}
	}
	if concepts != 3 || roles != 3 {
		t.Fatalf("concepts=%d roles=%d", concepts, roles)
	}
	// Prefixed names resolve to local names.
	if q.Atoms[0].Pred != "GraduateStudent" {
		t.Fatalf("atom 0 = %v", q.Atoms[0])
	}
	if !q.Connected() {
		t.Fatal("Q2 should be connected")
	}
}

func TestParseShorthandType(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x a <http://ex.org/Student> . ?x <http://ex.org/takes> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 2 || q.Atoms[0].Pred != "Student" || q.Atoms[1].Pred != "takes" {
		t.Fatalf("q = %s", q)
	}
}

func TestSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?x <http://ex.org/p> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 2 {
		t.Fatalf("head = %v", q.Head)
	}
}

func TestSelectDistinct(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 || q.Head[0] != "x" {
		t.Fatalf("head = %v", q.Head)
	}
}

func TestRejectsOutsideFragment(t *testing.T) {
	bad := map[string]string{
		"ask":       `ASK { ?x ?p ?y }`,
		"optional":  `SELECT ?x WHERE { ?x a <C> . OPTIONAL { ?x <p> ?y } }`,
		"filter":    `SELECT ?x WHERE { ?x <p> ?y . FILTER(?y > 3) }`,
		"union":     `SELECT ?x WHERE { { ?x a <C> } UNION { ?x a <D> } }`,
		"literal":   `SELECT ?x WHERE { ?x <p> "lit" . }`,
		"constSubj": `SELECT ?x WHERE { <http://ex.org/s> <p> ?x . }`,
		"constObj":  `SELECT ?x WHERE { ?x <http://ex.org/p> <http://ex.org/o> . }`,
		"varPred":   `SELECT ?x WHERE { ?x ?p ?y . }`,
		"varClass":  `SELECT ?x WHERE { ?x a ?c . }`,
		"badPrefix": `SELECT ?x WHERE { ?x ub:p ?y . }`,
		"projected": `SELECT ?zzz WHERE { ?x <p> ?y . }`,
		"empty":     `SELECT ?x WHERE { }`,
		"noWhere":   `SELECT ?x`,
		"blank":     `SELECT ?x WHERE { ?x <p> [ <q> ?y ] . }`,
		"arity":     `SELECT ?x WHERE { ?x <p> . }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestPrefixErrors(t *testing.T) {
	for _, src := range []string{
		`PREFIX ub <http://x> SELECT ?x WHERE { ?x a ub:C . }`,
		`PREFIX ub: http://x SELECT ?x WHERE { ?x a ub:C . }`,
		`PREFIX ub: <http://x SELECT ?x WHERE { ?x a ub:C . }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted malformed prefix %q", src)
		}
	}
}

func TestRoundTripThroughCQ(t *testing.T) {
	q, err := Parse(lubmQ2)
	if err != nil {
		t.Fatal(err)
	}
	// The parsed query must be a valid CQ (re-parseable in CQ syntax).
	if !strings.Contains(q.String(), "memberOf(x, z)") {
		t.Fatalf("String = %s", q)
	}
}
