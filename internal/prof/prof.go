// Package prof wires -cpuprofile / -memprofile flags into the CLIs via
// runtime/pprof, so hot-path regressions can be diagnosed on a deployed
// binary without editing code:
//
//	ogpa -cpuprofile cpu.out ... && go tool pprof cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session is one profiling run. Start it before the measured work and
// Stop it exactly once afterwards (for servers: on signal-triggered
// shutdown); the zero Session and a nil *Session are inert.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling into cpuPath and arranges for a heap
// profile at memPath on Stop. Either path may be empty to skip that
// profile; if both are empty the returned Session is inert.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			//lint:ignore droppederr Close error is secondary to the StartCPUProfile failure being returned
			_ = f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop finishes the CPU profile and writes the heap profile. It is safe
// on a nil Session and idempotent.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	var first error
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			first = err
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		s.memPath = ""
	}
	if first != nil {
		return fmt.Errorf("prof: %w", first)
	}
	return nil
}
