// Package perfectref implements the classic PerfectRef rewriting algorithm
// of Calvanese et al. (JAR'07), reviewed in Section IV-A of the paper: given
// a conjunctive query q and a DL-Lite_R TBox T, it produces a union of
// conjunctive queries (UCQ) q_o with q_o ≡_T q, by interleaving Deduction
// (applying inclusions I1–I11 of Table II to atoms) and Reduction (unifying
// atom pairs with their most general unifier).
//
// The UCQ is worst-case exponential in |q| (paper Example 7); this package
// is the baseline that the paper's GenOGP avoids. RewriteOptimized adds the
// subsumption pruning used by the Iqaros/Rapid family of optimized UCQ
// rewriters: it removes disjuncts subsumed by another disjunct, shrinking
// the UCQ without changing its answers.
package perfectref

import (
	"errors"
	"fmt"
	"time"

	"ogpa/internal/cq"
	"ogpa/internal/dllite"
)

// Limits bounds a rewriting run. Zero values disable the respective limit.
type Limits struct {
	MaxQueries int           // abort when the UCQ exceeds this many disjuncts
	Timeout    time.Duration // abort after this much wall-clock time
}

// ErrLimit is returned when a limit was hit; the paper marks such queries
// "unsolved" and charges the time limit.
var ErrLimit = errors.New("perfectref: rewriting limit exceeded")

// UCQ is a union of conjunctive queries.
type UCQ struct {
	Queries []*cq.Query
}

// Size reports the total number of atoms across disjuncts, the paper's
// rewriting-size metric (Exp-2).
func (u *UCQ) Size() int {
	n := 0
	for _, q := range u.Queries {
		n += q.Size()
	}
	return n
}

// Len reports the number of disjuncts.
func (u *UCQ) Len() int { return len(u.Queries) }

// Rewrite runs PerfectRef. The result always contains the input query as
// its first disjunct.
func (u *UCQ) String() string {
	s := ""
	for i, q := range u.Queries {
		if i > 0 {
			s += "\n∪ "
		}
		s += q.String()
	}
	return s
}

// Rewrite runs the classic PerfectRef loop.
func Rewrite(q *cq.Query, t *dllite.TBox, lim Limits) (*UCQ, error) {
	var deadline time.Time
	if lim.Timeout > 0 {
		deadline = time.Now().Add(lim.Timeout)
	}
	set := newQuerySet()
	set.add(q)
	frontier := []*cq.Query{q}
	fresh := freshGen{}

	for len(frontier) > 0 {
		if lim.MaxQueries > 0 && set.len() > lim.MaxQueries {
			return nil, ErrLimit
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrLimit
		}
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		// Deduction: apply every applicable inclusion to every atom.
		unbound := cur.Unbound()
		for i, g := range cur.Atoms {
			for _, rep := range applicable(cur, g, unbound, t, &fresh) {
				next := cur.Clone()
				next.Atoms[i] = rep
				dedupAtoms(next)
				if set.add(next) {
					frontier = append(frontier, next)
				}
			}
		}

		// Reduction: unify every unifiable atom pair.
		for i := 0; i < len(cur.Atoms); i++ {
			for j := i + 1; j < len(cur.Atoms); j++ {
				sigma := cur.Unify(cur.Atoms[i], cur.Atoms[j])
				if sigma == nil {
					continue
				}
				next := cur.Apply(sigma)
				if set.add(next) {
					frontier = append(frontier, next)
				}
			}
		}
	}
	return &UCQ{Queries: set.queries()}, nil
}

// RewriteOptimized runs PerfectRef and then prunes subsumed disjuncts
// (if q2 maps homomorphically into q1 fixing the head, q1 is redundant).
// The time limit covers both phases.
func RewriteOptimized(q *cq.Query, t *dllite.TBox, lim Limits) (*UCQ, error) {
	var deadline time.Time
	if lim.Timeout > 0 {
		deadline = time.Now().Add(lim.Timeout)
	}
	u, err := Rewrite(q, t, lim)
	if err != nil {
		return nil, err
	}
	keep := make([]bool, len(u.Queries))
	for i := range keep {
		keep[i] = true
	}
	for i, qi := range u.Queries {
		if !keep[i] {
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrLimit
		}
		for j, qj := range u.Queries {
			if i == j || !keep[j] {
				continue
			}
			// qj subsumes qi when qj (smaller or equal) maps into qi.
			if qj.Size() <= qi.Size() && Subsumes(qj, qi) {
				if qi.Size() == qj.Size() && j > i {
					continue // symmetric pair: keep the earlier one
				}
				keep[i] = false
				break
			}
		}
	}
	out := &UCQ{}
	for i, qi := range u.Queries {
		if keep[i] {
			out.Queries = append(out.Queries, qi)
		}
	}
	return out, nil
}

// applicable enumerates the replacement atoms gr(g, I) for every inclusion
// I ∈ T applicable to atom g in query cur, per Table II.
func applicable(cur *cq.Query, g cq.Atom, unbound map[string]bool, t *dllite.TBox, fresh *freshGen) []cq.Atom {
	var out []cq.Atom
	if !g.IsRole {
		// Atom A(x): I1 (A2 ⊑ A), I8 (∃P ⊑ A), I9 (∃P^- ⊑ A).
		for _, sub := range t.SubConceptsOf(dllite.Atomic(g.Pred)) {
			out = append(out, conceptToAtom(sub, g.X, fresh))
		}
		return out
	}

	// Role atom P(x, y).
	// Role inclusions I2/I3 always apply.
	for _, sub := range t.SubRolesOf(dllite.Role{Name: g.Pred}) {
		if !sub.Inv {
			out = append(out, cq.RoleAtom(sub.Name, g.X, g.Y))
		} else {
			out = append(out, cq.RoleAtom(sub.Name, g.Y, g.X))
		}
	}
	// When y is unbound, g acts as P(x, _): inclusions with RHS ∃P apply.
	if unbound[g.Y] {
		for _, sub := range t.SubConceptsOf(dllite.Exists(dllite.Role{Name: g.Pred})) {
			out = append(out, conceptToAtom(sub, g.X, fresh))
		}
	}
	// When x is unbound, g acts as P(_, y): inclusions with RHS ∃P^- apply.
	if unbound[g.X] {
		for _, sub := range t.SubConceptsOf(dllite.Exists(dllite.Role{Name: g.Pred, Inv: true})) {
			out = append(out, conceptToAtom(sub, g.Y, fresh))
		}
	}
	return out
}

// conceptToAtom renders a subsumee concept as the replacement atom keeping
// variable x: A ↦ A(x), ∃P2 ↦ P2(x, _), ∃P2^- ↦ P2(_, x).
func conceptToAtom(c dllite.Concept, x string, fresh *freshGen) cq.Atom {
	switch {
	case !c.Exists:
		return cq.ConceptAtom(c.Name, x)
	case !c.Inv:
		return cq.RoleAtom(c.Name, x, fresh.next())
	default:
		return cq.RoleAtom(c.Name, fresh.next(), x)
	}
}

// dedupAtoms removes duplicate atoms in place (queries are atom *sets*).
func dedupAtoms(q *cq.Query) {
	seen := make(map[cq.Atom]bool, len(q.Atoms))
	w := 0
	for _, a := range q.Atoms {
		if !seen[a] {
			seen[a] = true
			q.Atoms[w] = a
			w++
		}
	}
	q.Atoms = q.Atoms[:w]
}

type freshGen struct{ n int }

func (f *freshGen) next() string {
	f.n++
	return fmt.Sprintf("_g%d", f.n)
}

// querySet deduplicates queries: a cheap canonical-string index with exact
// isomorphism verification inside each bucket, so distinct queries are never
// merged (which would lose answers) while duplicates are reliably dropped.
type querySet struct {
	buckets map[string][]*cq.Query
	order   []*cq.Query
}

func newQuerySet() *querySet {
	return &querySet{buckets: make(map[string][]*cq.Query)}
}

func (s *querySet) len() int { return len(s.order) }

func (s *querySet) queries() []*cq.Query { return s.order }

func (s *querySet) add(q *cq.Query) bool {
	key := q.Canonical()
	for _, other := range s.buckets[key] {
		if isoEqual(q, other) {
			return false
		}
	}
	s.buckets[key] = append(s.buckets[key], q)
	s.order = append(s.order, q)
	return true
}

// isoEqual reports whether two queries are equal up to a bijective renaming
// of existential variables (distinguished variables must match by name).
func isoEqual(a, b *cq.Query) bool {
	if len(a.Atoms) != len(b.Atoms) || len(a.Head) != len(b.Head) {
		return false
	}
	for i := range a.Head {
		if a.Head[i] != b.Head[i] {
			return false
		}
	}
	used := make(map[int]bool, len(b.Atoms))
	sigma := make(map[string]string)
	rev := make(map[string]string)
	var match func(i int) bool
	bindVar := func(x, y string) (ok, added bool) {
		if a.IsDistinguished(x) || b.IsDistinguished(y) {
			return x == y, false
		}
		if sx, ok := sigma[x]; ok {
			return sx == y, false
		}
		if _, ok := rev[y]; ok {
			return false, false
		}
		sigma[x] = y
		rev[y] = x
		return true, true
	}
	match = func(i int) bool {
		if i == len(a.Atoms) {
			return true
		}
		ga := a.Atoms[i]
		for j, gb := range b.Atoms {
			if used[j] || ga.Pred != gb.Pred || ga.IsRole != gb.IsRole {
				continue
			}
			var added []string
			ok := true
			pairs := [][2]string{{ga.X, gb.X}}
			if ga.IsRole {
				pairs = append(pairs, [2]string{ga.Y, gb.Y})
			}
			for _, p := range pairs {
				okp, addedp := bindVar(p[0], p[1])
				if addedp {
					added = append(added, p[0])
				}
				if !okp {
					ok = false
					break
				}
			}
			if ok {
				used[j] = true
				if match(i + 1) {
					return true
				}
				used[j] = false
			}
			for _, x := range added {
				delete(rev, sigma[x])
				delete(sigma, x)
			}
		}
		return false
	}
	return match(0)
}

// Subsumes reports whether there is a homomorphism from small into big that
// fixes distinguished variables: then big is a redundant disjunct whenever
// small is also in the UCQ.
func Subsumes(small, big *cq.Query) bool {
	// Index big's atoms by predicate for candidate lookup.
	sigma := make(map[string]string)
	var match func(i int) bool
	bind := func(x, y string) (ok, added bool) {
		if small.IsDistinguished(x) {
			return x == y && big.IsDistinguished(y), false
		}
		if sx, ok := sigma[x]; ok {
			return sx == y, false
		}
		sigma[x] = y
		return true, true
	}
	match = func(i int) bool {
		if i == len(small.Atoms) {
			return true
		}
		ga := small.Atoms[i]
		for _, gb := range big.Atoms {
			if ga.Pred != gb.Pred || ga.IsRole != gb.IsRole {
				continue
			}
			var added []string
			ok := true
			pairs := [][2]string{{ga.X, gb.X}}
			if ga.IsRole {
				pairs = append(pairs, [2]string{ga.Y, gb.Y})
			}
			for _, p := range pairs {
				okp, addedp := bind(p[0], p[1])
				if addedp {
					added = append(added, p[0])
				}
				if !okp {
					ok = false
					break
				}
			}
			if ok && match(i+1) {
				return true
			}
			for _, x := range added {
				delete(sigma, x)
			}
		}
		return false
	}
	return match(0)
}
