package perfectref

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ogpa/internal/cq"
	"ogpa/internal/dllite"
)

// example2TBox is the paper's Example 2: Student ⊑ ∃takesCourse,
// PhD ⊑ Student, PhD ⊑ ∃advisorOf^-.
func example2TBox(t *testing.T) *dllite.TBox {
	t.Helper()
	tb, err := dllite.ParseTBox(strings.NewReader(`
Student SubClassOf some takesCourse
PhD SubClassOf Student
PhD SubClassOf some advisorOf-
`))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

const example3Query = `q(x) :- advisorOf(y1, x), advisorOf(y1, y2), advisorOf(y1, y3), takesCourse(x, z)`

// TestExample6 reproduces the paper's Example 6: PerfectRef on the Example 3
// query under the Example 2 TBox. The UCQ must contain the single-atom
// disjunct PhD(x) (which makes Ann an answer over A = {PhD(Ann)}) and the
// disjunct advisorOf(y1,x) ∧ Student(x).
//
// Note: the paper lists q12(x) = Student(x) among the results, but that
// disjunct would be unsound — no axiom of Example 2 gives a plain Student an
// advisor, so Student(s) alone does not entail q(s). PerfectRef as defined
// (replace one atom at a time) produces PhD(x) ∧ Student(x) there instead,
// which is what we generate.
func TestExample6(t *testing.T) {
	q := cq.MustParse(example3Query)
	u, err := Rewrite(q, example2TBox(t), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var hasPhD, hasAdvStudent, hasOriginal bool
	for _, d := range u.Queries {
		if d.Size() == 1 && !d.Atoms[0].IsRole && d.Atoms[0].Pred == "PhD" {
			hasPhD = true
		}
		if d.Size() == 2 {
			var adv, stu bool
			for _, a := range d.Atoms {
				if a.IsRole && a.Pred == "advisorOf" && a.Y == "x" {
					adv = true
				}
				if !a.IsRole && a.Pred == "Student" {
					stu = true
				}
			}
			if adv && stu {
				hasAdvStudent = true
			}
		}
		if d.Size() == 4 {
			hasOriginal = true
		}
	}
	if !hasOriginal {
		t.Error("UCQ must contain the original query")
	}
	if !hasPhD || !hasAdvStudent {
		t.Errorf("UCQ must contain PhD(x) and advisorOf(y1,x)∧Student(x); got %d disjuncts:\n%s", u.Len(), u)
	}
	// Unsound disjuncts must be absent.
	for _, d := range u.Queries {
		if d.Size() == 1 && !d.Atoms[0].IsRole && d.Atoms[0].Pred == "Student" {
			t.Errorf("unsound disjunct Student(x) generated")
		}
	}
	// The paper derives q plus q1–q13; our dedup merges a few intermediate
	// forms; the rewriting must stay in the same ballpark.
	if u.Len() < 10 || u.Len() > 40 {
		t.Errorf("unexpected UCQ size %d", u.Len())
	}
}

// TestExample7ExponentialBlowup reproduces the paper's Example 7: the star
// query under ∃P1 ⊑ ∃P_i yields a UCQ exponential in n.
func TestExample7ExponentialBlowup(t *testing.T) {
	build := func(n int) (*cq.Query, *dllite.TBox) {
		var atoms []string
		for i := 1; i <= n; i++ {
			atoms = append(atoms, fmt.Sprintf("P%d(x, y%d)", i, i))
		}
		q := cq.MustParse("q(y1) :- " + strings.Join(atoms, ", "))
		var cis []dllite.ConceptInclusion
		for i := 2; i <= n; i++ {
			cis = append(cis, dllite.ConceptInclusion{
				Sub: dllite.Exists(dllite.Role{Name: "P1"}),
				Sup: dllite.Exists(dllite.Role{Name: fmt.Sprintf("P%d", i)}),
			})
		}
		return q, dllite.NewTBox(cis, nil)
	}
	sizes := map[int]int{}
	for _, n := range []int{3, 4, 5, 6} {
		q, tb := build(n)
		u, err := Rewrite(q, tb, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = u.Len()
	}
	// Exponential growth: at least doubling per extra atom.
	if sizes[4] < 2*sizes[3]-2 || sizes[5] < 2*sizes[4]-2 || sizes[6] < 2*sizes[5]-2 {
		t.Errorf("expected exponential growth, got %v", sizes)
	}
	if sizes[6] < 32 {
		t.Errorf("n=6 should give ≥ 2^5 disjuncts, got %d", sizes[6])
	}
}

func TestRewriteNoOntology(t *testing.T) {
	q := cq.MustParse(`q(x) :- Student(x)`)
	u, err := Rewrite(q, dllite.NewTBox(nil, nil), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 || u.Queries[0].String() != q.String() {
		t.Fatalf("empty TBox should be the identity rewriting: %v", u)
	}
}

func TestRoleInclusionsAlwaysApply(t *testing.T) {
	// headOf ⊑ worksFor: worksFor(x,y) with *bound* y still rewrites.
	tb, err := dllite.ParseTBox(strings.NewReader("headOf SubPropertyOf worksFor"))
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse(`q(x, y) :- worksFor(x, y)`)
	u, err := Rewrite(q, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Fatalf("UCQ = %v", u)
	}
	found := false
	for _, d := range u.Queries {
		if d.Atoms[0].Pred == "headOf" && d.Atoms[0].X == "x" && d.Atoms[0].Y == "y" {
			found = true
		}
	}
	if !found {
		t.Fatalf("headOf(x,y) missing: %v", u)
	}
}

func TestInverseRoleInclusion(t *testing.T) {
	// advisee^- ⊑ advisorOf (I3): advisorOf(x,y) rewrites to advisee(y,x).
	tb := dllite.NewTBox(nil, []dllite.RoleInclusion{
		{Sub: dllite.Role{Name: "advisee", Inv: true}, Sup: dllite.Role{Name: "advisorOf"}},
	})
	q := cq.MustParse(`q(x, y) :- advisorOf(x, y)`)
	u, err := Rewrite(q, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range u.Queries {
		if d.Atoms[0].Pred == "advisee" && d.Atoms[0].X == "y" && d.Atoms[0].Y == "x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("advisee(y,x) missing: %v", u)
	}
}

func TestExistentialAppliesOnlyToUnbound(t *testing.T) {
	// A ⊑ ∃P. q(x) :- P(x, y), Q(y, z): y is bound, so A(x) must NOT appear.
	tb := dllite.NewTBox([]dllite.ConceptInclusion{
		{Sub: dllite.Atomic("A"), Sup: dllite.Exists(dllite.Role{Name: "P"})},
	}, nil)
	qBound := cq.MustParse(`q(x) :- P(x, y), Q(y, z)`)
	u, err := Rewrite(qBound, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range u.Queries {
		for _, a := range d.Atoms {
			if a.Pred == "A" {
				t.Fatalf("A(x) must not be derived for bound y: %v", u)
			}
		}
	}
	// With unbound y it must appear.
	qUnbound := cq.MustParse(`q(x) :- P(x, _)`)
	u2, err := Rewrite(qUnbound, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range u2.Queries {
		if d.Size() == 1 && d.Atoms[0].Pred == "A" {
			found = true
		}
	}
	if !found {
		t.Fatalf("A(x) missing for unbound y: %v", u2)
	}
}

func TestReductionEnablesDeduction(t *testing.T) {
	// The heart of PerfectRef: q(x) :- P(x,y), P(z,y) — neither occurrence
	// is unbound, but after unifying the two atoms y becomes unbound and
	// A ⊑ ∃P applies.
	tb := dllite.NewTBox([]dllite.ConceptInclusion{
		{Sub: dllite.Atomic("A"), Sup: dllite.Exists(dllite.Role{Name: "P"})},
	}, nil)
	q := cq.MustParse(`q(x) :- P(x, y), P(z, y)`)
	u, err := Rewrite(q, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range u.Queries {
		if d.Size() == 1 && d.Atoms[0].Pred == "A" && !d.Atoms[0].IsRole {
			found = true
		}
	}
	if !found {
		t.Fatalf("reduction should enable A(x): %v", u)
	}
}

func TestLimits(t *testing.T) {
	q := cq.MustParse(example3Query)
	if _, err := Rewrite(q, example2TBox(t), Limits{MaxQueries: 2}); err != ErrLimit {
		t.Fatalf("MaxQueries: err = %v", err)
	}
	if _, err := Rewrite(q, example2TBox(t), Limits{Timeout: time.Nanosecond}); err != ErrLimit {
		t.Fatalf("Timeout: err = %v", err)
	}
}

func TestRewriteOptimizedPrunes(t *testing.T) {
	q := cq.MustParse(example3Query)
	tb := example2TBox(t)
	full, err := Rewrite(q, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RewriteOptimized(q, tb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Len() >= full.Len() {
		t.Fatalf("optimized UCQ (%d) should be smaller than classic (%d)", opt.Len(), full.Len())
	}
	// The minimal cover here is exactly {advisorOf∧takesCourse,
	// advisorOf∧Student, PhD}: every other disjunct is subsumed.
	if opt.Len() != 3 {
		t.Fatalf("optimized UCQ should have 3 disjuncts, got %d:\n%s", opt.Len(), opt)
	}
	hasPhD := false
	for _, d := range opt.Queries {
		if d.Size() == 1 && d.Atoms[0].Pred == "PhD" {
			hasPhD = true
		}
	}
	if !hasPhD {
		t.Fatalf("pruning removed the non-redundant disjunct PhD(x):\n%s", opt)
	}
	if opt.Size() > full.Size() {
		t.Fatal("optimized Size should not exceed classic")
	}
}

func TestSubsumes(t *testing.T) {
	small := cq.MustParse(`q(x) :- P(x, y)`)
	big := cq.MustParse(`q(x) :- P(x, y), P(x, z), R(z)`)
	if !Subsumes(small, big) {
		t.Fatal("small maps into big")
	}
	if Subsumes(big, small) {
		t.Fatal("big cannot map into small")
	}
	// Head variables must be fixed.
	other := cq.MustParse(`q(x) :- P(y, x)`)
	if Subsumes(small, other) || Subsumes(other, small) {
		t.Fatal("direction matters for head variables")
	}
}

func TestIsoEqual(t *testing.T) {
	a := cq.MustParse(`q(x) :- P(x, y), Q(y, z)`)
	b := cq.MustParse(`q(x) :- Q(w, v), P(x, w)`)
	if !isoEqual(a, b) {
		t.Fatal("renamed/reordered queries are isomorphic")
	}
	c := cq.MustParse(`q(x) :- P(x, y), Q(z, y)`)
	if isoEqual(a, c) {
		t.Fatal("different shapes must not be isomorphic")
	}
	d := cq.MustParse(`q(x) :- P(x, y), Q(y, y)`)
	if isoEqual(a, d) {
		t.Fatal("variable merging must be detected")
	}
}

func TestUCQStringAndSize(t *testing.T) {
	u := &UCQ{Queries: []*cq.Query{
		cq.MustParse(`q(x) :- P(x, y)`),
		cq.MustParse(`q(x) :- A(x)`),
	}}
	if u.Size() != 2 || u.Len() != 2 {
		t.Fatalf("Size=%d Len=%d", u.Size(), u.Len())
	}
	if !strings.Contains(u.String(), "∪") {
		t.Fatal("String should join disjuncts")
	}
}
