package match

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"ogpa/internal/daf"
	"ogpa/internal/perfectref"
	"ogpa/internal/rewrite"
	"ogpa/internal/snap"
)

// TestSnapshotReloadEquivalence is the persistence-layer end of the
// equivalence property: for 100 randomKB seeds, answering on a graph
// that took a save/load round trip through the binary snapshot format
// must be byte-identical to answering on the in-memory original — on
// BOTH pipelines (GenOGP+OMatch and the PerfectRef UCQ baseline). This
// is what pins symbol-ID and VID stability across the format: any
// remapping would surface as renamed or reordered answer rows.
func TestSnapshotReloadEquivalence(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb, abox, q := randomKB(rng)
		g := abox.Graph(nil)

		path := filepath.Join(dir, "kb.snap")
		if err := snap.SaveSnapshot(path, g, uint64(seed)+1); err != nil {
			t.Fatalf("seed %d: SaveSnapshot: %v", seed, err)
		}
		rg, epoch, err := snap.LoadSnapshot(path)
		if err != nil {
			t.Fatalf("seed %d: LoadSnapshot: %v", seed, err)
		}
		if epoch != uint64(seed)+1 {
			t.Fatalf("seed %d: epoch %d survived as %d", seed, seed+1, epoch)
		}

		res, err := rewrite.Generate(q, tb)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		ogpMem, _, err := Match(res.Pattern, g, Options{})
		if err != nil {
			t.Fatalf("seed %d: Match (mem): %v", seed, err)
		}
		ogpSnap, _, err := Match(res.Pattern, rg, Options{})
		if err != nil {
			t.Fatalf("seed %d: Match (snap): %v", seed, err)
		}
		if !reflect.DeepEqual(ogpMem.Names2D(g), ogpSnap.Names2D(rg)) {
			t.Fatalf("seed %d: OMatch diverged across snapshot reload: %v vs %v (query %s)",
				seed, ogpMem.Names2D(g), ogpSnap.Names2D(rg), q)
		}

		u, err := perfectref.Rewrite(q, tb, perfectref.Limits{MaxQueries: 5000})
		if err != nil {
			t.Fatalf("seed %d: PerfectRef: %v", seed, err)
		}
		ucqMem, _, err := daf.EvalUCQ(u.Queries, g, daf.Limits{})
		if err != nil {
			t.Fatalf("seed %d: EvalUCQ (mem): %v", seed, err)
		}
		ucqSnap, _, err := daf.EvalUCQ(u.Queries, rg, daf.Limits{})
		if err != nil {
			t.Fatalf("seed %d: EvalUCQ (snap): %v", seed, err)
		}
		if !reflect.DeepEqual(ucqMem.Names2D(g), ucqSnap.Names2D(rg)) {
			t.Fatalf("seed %d: UCQ baseline diverged across snapshot reload: %v vs %v (query %s)",
				seed, ucqMem.Names2D(g), ucqSnap.Names2D(rg), q)
		}
	}
}
