// Package match implements OMatch (paper Section V): matching ontological
// graph patterns in data graphs by extending the DAF framework.
//
// The extensions over plain DAF, following the paper:
//
//   - Dummy ⊥ candidates: a vertex with a non-empty omission condition may
//     map to ⊥; its incident edges are then excused (BuildOMDAG step 1b).
//   - Dependency edges: if C^l(u) or C^o(u) references u', the OMDAG gains
//     an edge (u', u), so u' is mapped before u and u's conditions are
//     decidable when u is assigned (BuildOMDAG step 1c).
//   - OMCS: candidate sets are refined with non-global conditions and a
//     per-edge candidate adjacency is materialized; edges whose endpoint
//     can be omitted do not prune (they may be excused), retaining
//     soundness (BuildOMCS).
//   - Global conditions are compiled into a shared BDD (one Builder for the
//     whole pattern, so equal sub-conditions share structure) over atomic
//     conditions; atoms are evaluated at most once per operand tuple via a
//     cache (the paper's extra OMCS entries), and each condition is decided
//     as soon as its variables are mapped (OMBacktrack).
package match

import (
	"errors"
	"sort"
	"time"

	"ogpa/internal/core"
	"ogpa/internal/graph"
	"ogpa/internal/sbdd"
	"ogpa/internal/symbols"
)

// Order selects the matching order.
type Order int

// Matching orders.
const (
	// OrderAdaptive is DAF's candidate-size order.
	OrderAdaptive Order = iota
	// OrderStaticBFS is the OMatch_BFS ablation of the paper.
	OrderStaticBFS
)

// Limits bounds an enumeration; zero values disable a limit.
type Limits struct {
	MaxResults int
	MaxSteps   int64
	Deadline   time.Time
}

// ErrLimit reports that the enumeration hit a limit.
var ErrLimit = errors.New("match: enumeration limit exceeded")

// Options configures Match.
type Options struct {
	Order  Order
	Limits Limits

	// Workers bounds the worker pool of the parallel backtracker: the
	// first decision level's candidate pool (including the ⊥ candidate)
	// is partitioned across this many goroutines, each owning its own
	// runtime state and BDD evaluation cache. 0 means
	// runtime.GOMAXPROCS(0); 1 runs the sequential path. Answers are
	// merged in candidate order, so results are identical to sequential.
	Workers int

	// Ablation switches (benchmarking only; both default to enabled).
	DisableEarlyReject           bool // skip partial-BDD pruning during backtracking
	DisableExistentialCompletion bool // enumerate existential witnesses exhaustively
}

// Stats reports work done by one Match call.
type Stats struct {
	Steps        int64
	CSCandidates int
	RefinePasses int
	BDDNodes     int
	AtomCacheHit int64
	AtomEvals    int64
	// Truncated reports that enumeration stopped before exhausting the
	// search space (MaxResults reached, MaxSteps exceeded, or the
	// deadline passed).
	Truncated bool
}

type condKind uint8

const (
	condVertexMatch condKind = iota
	condVertexOmit
	condEdgeMatch
)

type condInfo struct {
	kind  condKind
	owner int // vertex index or edge index
	ref   sbdd.Ref
	vars  []int // pattern vertices that must be assigned before deciding
}

// probe describes how to enumerate partner candidates along an edge:
// follow data edges labeled label (0 = any) in the given direction.
type probe struct {
	label   symbols.ID
	forward bool // true: pattern-From → pattern-To direction
}

type matcher struct {
	p    *core.Pattern
	g    *graph.Graph
	opts Options

	canOmit []bool
	cand    [][]graph.VID

	// Conditions and the shared BDD.
	bdd      *sbdd.Builder
	atoms    []core.Cond
	atomVars [][]int
	atomFns  []func(core.Mapping) bool
	atomIdx  map[core.Cond]int
	conds    []condInfo
	// condsOf[u] = indexes of conditions whose vars include u.
	condsOf [][]int

	// localDNF[u]: DNF of the vertex's matching condition restricted check
	// (nil when no condition).
	localDNF [][][]core.Cond

	// Per-edge compiled info.
	edgeProbes                    [][]probe
	edgeIndexab                   []bool
	edgePairs                     [][][]core.Cond // DNF clauses for pairwise checking
	edgeCondIdx                   []int           // index into conds, or -1
	vertexMatchIdx, vertexOmitIdx []int

	// OMDAG.
	order       []int
	dagEdges    []dagEdge
	parentEdges [][]int // structural DAG edge indexes by child
	depParents  [][]int // dependency parents by vertex
	adj         []map[graph.VID][]graph.VID

	// Build-phase statistics; per-worker runtime counters (steps, atom
	// evaluations) live in budget/runtime and are merged in after the
	// backtracking phase.
	stats Stats
}

type dagEdge struct {
	parent, child int
	edge          int // pattern edge index
}

// Match computes Q(G) for a full OGP.
func Match(p *core.Pattern, g *graph.Graph, opts Options) (*core.AnswerSet, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	m := &matcher{
		p: p, g: g, opts: opts,
		atomIdx: make(map[core.Cond]int),
	}
	m.bdd = sbdd.New()
	m.compileConditions()

	out := core.NewAnswerSet()
	if !m.buildOMDAG() {
		return out, m.stats, nil
	}
	if !m.buildOMCS() {
		return out, m.stats, nil
	}
	m.stats.BDDNodes = m.bdd.NumNodes()
	err := m.backtrack(out)
	return out, m.stats, err
}

// atomID interns an atomic condition as a BDD variable and compiles it to
// a closure with pre-interned symbol IDs (the paper's "additional OMCS
// entries" caching role: no string lookups or graph-name resolution happen
// during backtracking).
func (m *matcher) atomID(c core.Cond) int {
	if id, ok := m.atomIdx[c]; ok {
		return id
	}
	id := len(m.atoms)
	m.atomIdx[c] = id
	m.atoms = append(m.atoms, c)
	vars := make([]int, 0, 2)
	for v := range core.Vars(c) {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	m.atomVars = append(m.atomVars, vars)
	m.atomFns = append(m.atomFns, m.compileAtom(c))
	return id
}

// compileAtom builds the evaluation closure for one atomic condition.
func (m *matcher) compileAtom(c core.Cond) func(core.Mapping) bool {
	g := m.g
	lookup := func(name string) (symbols.ID, bool) {
		if name == core.Wildcard {
			return symbols.None, true
		}
		id := g.Symbols.Lookup(name)
		return id, id != symbols.None
	}
	never := func(core.Mapping) bool { return false }
	switch t := c.(type) {
	case core.LabelIs:
		id, ok := lookup(t.Label)
		if !ok {
			return never
		}
		x := t.X
		return func(mp core.Mapping) bool {
			v := mp[x]
			return v != core.Omitted && g.HasLabel(v, id)
		}
	case core.EdgeIs:
		id, ok := lookup(t.Label)
		if !ok {
			return never
		}
		x, y := t.X, t.Y
		if id == symbols.None { // wildcard label
			return func(mp core.Mapping) bool {
				vx, vy := mp[x], mp[y]
				return vx != core.Omitted && vy != core.Omitted && g.HasAnyEdge(vx, vy)
			}
		}
		return func(mp core.Mapping) bool {
			vx, vy := mp[x], mp[y]
			return vx != core.Omitted && vy != core.Omitted && g.HasEdge(vx, id, vy)
		}
	case core.EdgeExists:
		id, ok := lookup(t.Label)
		if !ok {
			return never
		}
		x, out := t.X, t.Out
		if id == symbols.None {
			return func(mp core.Mapping) bool {
				v := mp[x]
				if v == core.Omitted {
					return false
				}
				if out {
					return g.OutDegree(v) > 0
				}
				return g.InDegree(v) > 0
			}
		}
		return func(mp core.Mapping) bool {
			v := mp[x]
			if v == core.Omitted {
				return false
			}
			if out {
				return g.HasOutLabel(v, id)
			}
			return g.HasInLabel(v, id)
		}
	case core.SameAs:
		x, y := t.X, t.Y
		return func(mp core.Mapping) bool {
			vx, vy := mp[x], mp[y]
			return vx != core.Omitted && vx == vy
		}
	case core.IsOmitted:
		x := t.X
		return func(mp core.Mapping) bool {
			return mp[x] == core.Omitted
		}
	default:
		// Attribute comparisons and anything exotic fall back to the
		// generic evaluator (they intern names per call, but attribute
		// conditions are rare and cheap relative to enumeration).
		return func(mp core.Mapping) bool {
			return core.Eval(c, mp, g)
		}
	}
}

// toBDD compiles a condition tree into the shared BDD.
func (m *matcher) toBDD(c core.Cond) sbdd.Ref {
	switch t := c.(type) {
	case nil, core.True:
		return sbdd.True
	case core.And:
		return m.bdd.And(m.toBDD(t.L), m.toBDD(t.R))
	case core.Or:
		return m.bdd.Or(m.toBDD(t.L), m.toBDD(t.R))
	default:
		return m.bdd.Var(m.atomID(c))
	}
}

func (m *matcher) addCond(kind condKind, owner int, c core.Cond, extraVars ...int) int {
	ref := m.toBDD(c)
	seen := map[int]bool{}
	var vars []int
	add := func(v int) {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for v := range core.Vars(c) {
		add(v)
	}
	for _, v := range extraVars {
		add(v)
	}
	ci := len(m.conds)
	m.conds = append(m.conds, condInfo{kind: kind, owner: owner, ref: ref, vars: vars})
	return ci
}

func (m *matcher) compileConditions() {
	n := len(m.p.Vertices)
	m.canOmit = make([]bool, n)
	m.localDNF = make([][][]core.Cond, n)
	m.vertexMatchIdx = make([]int, n)
	m.vertexOmitIdx = make([]int, n)
	for u, v := range m.p.Vertices {
		m.canOmit[u] = v.Omit != nil
		m.vertexMatchIdx[u] = -1
		m.vertexOmitIdx[u] = -1
		if v.Match != nil {
			m.localDNF[u] = core.DNF(v.Match)
			m.vertexMatchIdx[u] = m.addCond(condVertexMatch, u, v.Match, u)
		}
		if v.Omit != nil {
			m.vertexOmitIdx[u] = m.addCond(condVertexOmit, u, v.Omit, u)
		}
	}

	m.edgeProbes = make([][]probe, len(m.p.Edges))
	m.edgeIndexab = make([]bool, len(m.p.Edges))
	m.edgePairs = make([][][]core.Cond, len(m.p.Edges))
	m.edgeCondIdx = make([]int, len(m.p.Edges))
	for ei, e := range m.p.Edges {
		cond := e.Match
		if cond == nil {
			cond = core.EdgeIs{X: e.From, Y: e.To, Label: e.Label}
		}
		m.edgeCondIdx[ei] = m.addCond(condEdgeMatch, ei, cond, e.From, e.To)
		clauses := core.DNF(cond)
		m.edgePairs[ei] = clauses
		indexable := true
		seen := map[probe]bool{}
		var probes []probe
		for _, clause := range clauses {
			found := false
			for _, a := range clause {
				pe, ok := a.(core.EdgeIs)
				if !ok {
					continue
				}
				var pr probe
				switch {
				case pe.X == e.From && pe.Y == e.To:
					pr = probe{forward: true}
				case pe.X == e.To && pe.Y == e.From:
					pr = probe{forward: false}
				default:
					continue
				}
				if pe.Label != core.Wildcard {
					pr.label = m.g.Symbols.Lookup(pe.Label)
					if pr.label == symbols.None {
						continue // label absent from G: this atom can never hold
					}
				}
				found = true
				if !seen[pr] {
					seen[pr] = true
					probes = append(probes, pr)
				}
			}
			if !found {
				// Some disjunct does not pin a data edge between the
				// endpoints: candidate partners cannot be enumerated from
				// adjacency. The edge is checked purely as a condition.
				indexable = false
			}
		}
		m.edgeProbes[ei] = probes
		m.edgeIndexab[ei] = indexable && len(probes) > 0
	}

	m.condsOf = make([][]int, n)
	for ci, c := range m.conds {
		for _, v := range c.vars {
			m.condsOf[v] = append(m.condsOf[v], ci)
		}
	}
}

// localPass checks the label constraint plus the vertex's local condition
// disjuncts on a single candidate.
func (m *matcher) localPass(u int, v graph.VID) bool {
	pv := m.p.Vertices[u]
	if pv.Label != core.Wildcard {
		l := m.g.Symbols.Lookup(pv.Label)
		if l == symbols.None || !m.g.HasLabel(v, l) {
			return false
		}
	}
	if m.localDNF[u] == nil {
		return true
	}
	mini := make(core.Mapping, len(m.p.Vertices))
	for i := range mini {
		mini[i] = core.Omitted
	}
	mini[u] = v
	for _, clause := range m.localDNF[u] {
		ok := true
		for _, a := range clause {
			vars := core.Vars(a)
			if len(vars) == 1 && vars[u] {
				if !core.Eval(a, mini, m.g) {
					ok = false
					break
				}
			}
			// Atoms referencing other vertices are optimistic here.
		}
		if ok {
			return true
		}
	}
	return false
}

// seedPool returns an initial candidate pool for vertex u, preferring label
// buckets when every local disjunct pins a label.
func (m *matcher) seedPool(u int) []graph.VID {
	pv := m.p.Vertices[u]
	if pv.Label != core.Wildcard {
		l := m.g.Symbols.Lookup(pv.Label)
		if l == symbols.None {
			return nil
		}
		return m.g.VerticesByLabel(l)
	}
	if m.localDNF[u] != nil {
		var union []graph.VID
		seen := map[graph.VID]bool{}
		ok := true
		for _, clause := range m.localDNF[u] {
			label := ""
			for _, a := range clause {
				if li, isLabel := a.(core.LabelIs); isLabel && li.X == u && li.Label != core.Wildcard {
					label = li.Label
					break
				}
			}
			if label == "" {
				ok = false
				break
			}
			for _, v := range m.g.VerticesByLabel(m.g.Symbols.Lookup(label)) {
				if !seen[v] {
					seen[v] = true
					union = append(union, v)
				}
			}
		}
		if ok {
			sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
			return union
		}
	}
	all := make([]graph.VID, m.g.NumVertices())
	for i := range all {
		all[i] = graph.VID(i)
	}
	return all
}

// buildOMDAG initializes candidates, collects dependency edges and computes
// a dependency-respecting BFS order.
func (m *matcher) buildOMDAG() bool {
	n := len(m.p.Vertices)
	m.cand = make([][]graph.VID, n)
	for u := 0; u < n; u++ {
		var out []graph.VID
		for _, v := range m.seedPool(u) {
			if m.localPass(u, v) {
				out = append(out, v)
			}
		}
		if len(out) == 0 && !m.canOmit[u] {
			return false
		}
		m.cand[u] = out
	}

	// Dependency parents: conditions of u referencing u'.
	m.depParents = make([][]int, n)
	depSeen := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		depSeen[u] = map[int]bool{}
	}
	addDep := func(u, parent int) {
		if parent != u && !depSeen[u][parent] {
			depSeen[u][parent] = true
			m.depParents[u] = append(m.depParents[u], parent)
		}
	}
	for u, v := range m.p.Vertices {
		for w := range core.Vars(v.Match) {
			addDep(u, w)
		}
		for w := range core.Vars(v.Omit) {
			addDep(u, w)
		}
	}

	// Structural adjacency for the BFS.
	adjV := make([][]int, n)
	deg := make([]int, n)
	for _, e := range m.p.Edges {
		adjV[e.From] = append(adjV[e.From], e.To)
		adjV[e.To] = append(adjV[e.To], e.From)
		deg[e.From]++
		deg[e.To]++
	}
	for u := 0; u < n; u++ {
		for _, w := range m.depParents[u] {
			adjV[u] = append(adjV[u], w)
			adjV[w] = append(adjV[w], u)
		}
	}

	// Root selection: prefer vertices without dependencies and with small
	// candidate sets relative to degree (paper BuildOMDAG step 2).
	root, bestScore := 0, float64(1<<62)
	for u := 0; u < n; u++ {
		d := deg[u]
		if d == 0 {
			d = 1
		}
		score := float64(len(m.cand[u])) / float64(d)
		if len(m.depParents[u]) > 0 {
			score *= 1e6
		}
		if m.canOmit[u] {
			score *= 4 // omittable roots enumerate ⊥ early, less selective
		}
		if score < bestScore {
			bestScore = score
			root = u
		}
	}

	// BFS order from the root over structural plus dependency adjacency.
	// Dependency edges influence the root choice and appear in the BFS
	// adjacency, but they do NOT gate the order: conditions are evaluated
	// exactly when their variables are mapped (remaining-variable counters
	// in the backtracker), which is order-independent. Hard-gating the
	// order on dependencies can force an omittable hub after its
	// unconstrained neighbors and destroy the matching order.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	placed := 0
	var queue []int
	place := func(u int) {
		pos[u] = placed
		m.order = append(m.order, u)
		placed++
		queue = append(queue, u)
	}
	place(root)
	for placed < n {
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adjV[u] {
				if pos[w] < 0 {
					place(w)
				}
			}
		}
		if placed == n {
			break
		}
		for u := 0; u < n; u++ { // disconnected piece: new BFS root
			if pos[u] < 0 {
				place(u)
				break
			}
		}
	}

	// Orient structural edges along the order.
	m.parentEdges = make([][]int, n)
	for ei, e := range m.p.Edges {
		de := dagEdge{edge: ei}
		if pos[e.From] <= pos[e.To] {
			de.parent, de.child = e.From, e.To
		} else {
			de.parent, de.child = e.To, e.From
		}
		idx := len(m.dagEdges)
		m.dagEdges = append(m.dagEdges, de)
		m.parentEdges[de.child] = append(m.parentEdges[de.child], idx)
	}
	return true
}

// neighborsVia enumerates partner candidates of v along pattern edge ei,
// where v plays vertex side (From if fromSide).
func (m *matcher) neighborsVia(ei int, v graph.VID, fromSide bool) []graph.VID {
	var out []graph.VID
	seen := map[graph.VID]bool{}
	for _, pr := range m.edgeProbes[ei] {
		// A forward probe runs From→To in the data graph.
		outgoing := pr.forward == fromSide
		var hs []graph.Half
		if outgoing {
			if pr.label == symbols.None {
				hs = m.g.Out(v)
			} else {
				hs = m.g.OutByLabel(v, pr.label)
			}
		} else {
			if pr.label == symbols.None {
				hs = m.g.In(v)
			} else {
				hs = m.g.InByLabel(v, pr.label)
			}
		}
		for _, h := range hs {
			if !seen[h.To] {
				seen[h.To] = true
				out = append(out, h.To)
			}
		}
	}
	return out
}

// pairwiseOK checks the pairwise-local part of edge ei's condition for the
// candidate pair (atoms referencing third vertices are optimistic).
func (m *matcher) pairwiseOK(ei int, vFrom, vTo graph.VID) bool {
	e := m.p.Edges[ei]
	mini := make(core.Mapping, len(m.p.Vertices))
	for i := range mini {
		mini[i] = core.Omitted
	}
	mini[e.From], mini[e.To] = vFrom, vTo
	for _, clause := range m.edgePairs[ei] {
		ok := true
		for _, a := range clause {
			local := true
			for w := range core.Vars(a) {
				if w != e.From && w != e.To {
					local = false
					break
				}
			}
			if local && !core.Eval(a, mini, m.g) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// buildOMCS refines candidate sets and materializes per-DAG-edge adjacency.
// Edges whose far endpoint is omittable never prune (they may be excused),
// keeping OMCS sound (paper Section V-B).
func (m *matcher) buildOMCS() bool {
	n := len(m.p.Vertices)
	inCand := make([]map[graph.VID]bool, n)
	rebuild := func(u int) {
		s := make(map[graph.VID]bool, len(m.cand[u]))
		for _, v := range m.cand[u] {
			s[v] = true
		}
		inCand[u] = s
	}
	for u := 0; u < n; u++ {
		rebuild(u)
	}

	refineVertex := func(u int) bool {
		changed := false
		out := m.cand[u][:0]
		for _, v := range m.cand[u] {
			ok := true
			for ei, e := range m.p.Edges {
				if !m.edgeIndexab[ei] {
					continue
				}
				var far int
				var fromSide bool
				switch u {
				case e.From:
					far, fromSide = e.To, true
				case e.To:
					far, fromSide = e.From, false
				default:
					continue
				}
				if m.canOmit[far] || m.canOmit[u] {
					continue // edge may be excused; do not prune through it
				}
				found := false
				for _, w := range m.neighborsVia(ei, v, fromSide) {
					if !inCand[far][w] {
						continue
					}
					var okPair bool
					if fromSide {
						okPair = m.pairwiseOK(ei, v, w)
					} else {
						okPair = m.pairwiseOK(ei, w, v)
					}
					if okPair {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, v)
			} else {
				changed = true
			}
		}
		m.cand[u] = out
		if changed {
			rebuild(u)
		}
		return changed
	}

	for pass := 0; pass < 4; pass++ {
		m.stats.RefinePasses++
		changed := false
		if pass%2 == 0 {
			for i := len(m.order) - 1; i >= 0; i-- {
				changed = refineVertex(m.order[i]) || changed
			}
		} else {
			for _, u := range m.order {
				changed = refineVertex(u) || changed
			}
		}
		for u := 0; u < n; u++ {
			if len(m.cand[u]) == 0 && !m.canOmit[u] {
				return false
			}
		}
		if !changed {
			break
		}
	}
	for u := 0; u < n; u++ {
		m.stats.CSCandidates += len(m.cand[u])
	}

	// Materialize adjacency for indexable DAG edges.
	m.adj = make([]map[graph.VID][]graph.VID, len(m.dagEdges))
	for di, de := range m.dagEdges {
		if !m.edgeIndexab[de.edge] {
			continue
		}
		e := m.p.Edges[de.edge]
		fromSide := de.parent == e.From
		am := make(map[graph.VID][]graph.VID, len(m.cand[de.parent]))
		for _, v := range m.cand[de.parent] {
			var vs []graph.VID
			for _, w := range m.neighborsVia(de.edge, v, fromSide) {
				if !inCand[de.child][w] {
					continue
				}
				var okPair bool
				if fromSide {
					okPair = m.pairwiseOK(de.edge, v, w)
				} else {
					okPair = m.pairwiseOK(de.edge, w, v)
				}
				if okPair {
					vs = append(vs, w)
				}
			}
			if len(vs) > 0 {
				sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
				am[v] = vs
			}
		}
		m.adj[di] = am
	}
	return true
}
