// Package match is the OMatch front-end (paper Section V): matching
// ontological graph patterns in data graphs by extending the DAF
// framework. The execution pipeline itself — OMDAG construction, OMCS
// candidate refinement with CSR adjacency, the zero-alloc backtracking
// runtime and its worker pool — lives in internal/engine, shared with
// the plain-CQ front-end internal/daf. This package installs the
// OGP-specific plan capabilities on top of it:
//
//   - Dummy ⊥ candidates (engine.Caps.Omission): a vertex with a
//     non-empty omission condition may map to ⊥; its incident edges are
//     then excused (BuildOMDAG step 1b).
//   - Dependency edges (engine.Caps.DependencyEdges): if C^l(u) or
//     C^o(u) references u', the OMDAG gains an edge (u', u), so u' is
//     mapped before u and u's conditions are decidable when u is
//     assigned (BuildOMDAG step 1c).
//   - Global conditions compiled into a shared BDD over atomic
//     conditions, decided as soon as their variables are mapped
//     (OMBacktrack); the engine always carries this machinery — a plain
//     CQ is just the degenerate condition-free case.
//
// The exported types are aliases of the engine's, so a match.Options or
// match.Stats is interchangeable with the engine's (and with daf's).
package match

import (
	"ogpa/internal/core"
	"ogpa/internal/engine"
	"ogpa/internal/graph"
)

// Order selects the matching order.
type Order = engine.Order

// Matching orders.
const (
	// OrderAdaptive is DAF's candidate-size order.
	OrderAdaptive = engine.OrderAdaptive
	// OrderStaticBFS is the OMatch_BFS ablation of the paper.
	OrderStaticBFS = engine.OrderStaticBFS
)

// Limits bounds an enumeration; zero values disable a limit.
type Limits = engine.Limits

// ErrLimit reports that the enumeration hit a limit. It is the engine's
// sentinel, re-exported so existing == comparisons keep working.
var ErrLimit = engine.ErrLimit

// Options configures Match; see engine.Options. The OGP capabilities
// (Caps) are installed by Prepare and need not be set by callers.
type Options = engine.Options

// Stats reports work done by one Match call; see engine.Stats.
type Stats = engine.Stats

// Sharder routes a Run through the engine's scatter-gather path when set
// on Options; see engine.Sharder (internal/shard's Set implements it).
type Sharder = engine.Sharder

// ShardRunStats is one shard's share of a scatter-gather run.
type ShardRunStats = engine.ShardRunStats

// Prepared is a compiled OGP matching plan; see engine.Plan. The build
// phase depends only on the pattern and the graph, so a Prepared can be
// cached and Run many times — concurrently, with different limits and
// worker counts — which is how the server's plan cache skips GenOGP and
// BuildOMCS on repeated queries.
type Prepared = engine.Plan

// ogpCaps are the engine capabilities that make the shared pipeline
// OMatch: ⊥ candidates for omittable vertices and dependency edges.
// (Matching stays homomorphic; Injective is the daf front-end's.)
var ogpCaps = engine.Caps{Omission: true, DependencyEdges: true}

// Prepare runs the shared build phase with the OGP capabilities
// installed. Of opts only UseLegacyCS is consulted (it selects the
// reference candidate-space representation); enumeration options are
// taken per Run.
func Prepare(p *core.Pattern, g *graph.Graph, opts Options) (*Prepared, error) {
	opts.Caps = ogpCaps
	return engine.Prepare(p, g, opts)
}

// Match computes Q(G) for a full OGP.
func Match(p *core.Pattern, g *graph.Graph, opts Options) (*core.AnswerSet, Stats, error) {
	pr, err := Prepare(p, g, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return pr.Run(opts)
}
