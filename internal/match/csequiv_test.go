package match

import (
	"fmt"
	"math/rand"
	"testing"

	"ogpa/internal/rewrite"
)

// TestBitsetMapEquivalence is the contract of the bitset/CSR candidate
// space: for any pattern it yields byte-identical answers (same set,
// same insertion order) and the same index statistics as the map-based
// build it replaced (Options.UseLegacyCS, legacy.go). 100 random KBs,
// both checked sequentially and with a worker pool.
func TestBitsetMapEquivalence(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb, abox, q := randomKB(rng)
		g := abox.Graph(nil)
		res, err := rewrite.Generate(q, tb)
		if err != nil {
			continue // rewrite hit a generator limit; nothing to compare
		}
		p := res.Pattern

		mapAns, mapSt, err := Match(p, g, Options{Workers: 1, UseLegacyCS: true})
		if err != nil {
			t.Fatalf("seed %d: legacy Match: %v", seed, err)
		}
		mapNames := fmt.Sprint(mapAns.Names(g))

		for _, workers := range []int{1, 4} {
			csrAns, csrSt, err := Match(p, g, Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: bitset Match: %v", seed, workers, err)
			}
			if names := fmt.Sprint(csrAns.Names(g)); names != mapNames {
				t.Fatalf("seed %d workers %d:\nmap    %s\nbitset %s\npattern:\n%s",
					seed, workers, mapNames, names, p)
			}
			if csrSt.Truncated != mapSt.Truncated {
				t.Fatalf("seed %d workers %d: Truncated %v vs legacy %v",
					seed, workers, csrSt.Truncated, mapSt.Truncated)
			}
			// The two builds must construct the *same* index, not merely
			// agree on answers: candidate totals, materialized pairs and
			// refinement passes are all deterministic.
			if csrSt.CSCandidates != mapSt.CSCandidates ||
				csrSt.AdjPairs != mapSt.AdjPairs ||
				csrSt.RefinePasses != mapSt.RefinePasses {
				t.Fatalf("seed %d workers %d: index stats diverge: bitset {cand %d pairs %d passes %d} vs map {cand %d pairs %d passes %d}",
					seed, workers,
					csrSt.CSCandidates, csrSt.AdjPairs, csrSt.RefinePasses,
					mapSt.CSCandidates, mapSt.AdjPairs, mapSt.RefinePasses)
			}
		}
	}
}

// BenchmarkBuildOMCS isolates the shared build phase (BuildOMDAG +
// BuildOMCS + BDD compilation) on the large KB, bitset/CSR build vs the
// map-based legacy build. Allocations are the headline number: the CSR
// build must show >= 2x fewer allocs/op than map.
func BenchmarkBuildOMCS(b *testing.B) {
	g, p := benchGraph()
	for _, variant := range []struct {
		name   string
		legacy bool
	}{{"csr", false}, {"map", true}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pr, err := Prepare(p, g, Options{UseLegacyCS: variant.legacy})
				if err != nil {
					b.Fatal(err)
				}
				if pr.Stats().CSCandidates == 0 {
					b.Fatal("empty candidate space")
				}
			}
		})
	}
}

// BenchmarkAdjacency isolates the enumeration phase over a prepared
// plan, so what's measured is the per-node candidate work: CSR row
// lookups + galloping intersections vs map probes + allocating merges.
func BenchmarkAdjacency(b *testing.B) {
	g, p := benchGraph()
	for _, variant := range []struct {
		name   string
		legacy bool
	}{{"csr", false}, {"map", true}} {
		opts := Options{Workers: 1, UseLegacyCS: variant.legacy}
		pr, err := Prepare(p, g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ans, _, err := pr.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				if ans.Len() == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}
