package match

import (
	"errors"
	"fmt"
	"testing"

	"ogpa/internal/core"
	"ogpa/internal/graph"
)

// TestNonIndexableEdge: an edge whose condition has a disjunct without any
// endpoint edge atom cannot be driven from adjacency; it must be checked
// purely as a condition.
func TestNonIndexableEdge(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("a", "A")
	b.AddLabel("b", "B")
	b.AddLabel("c", "B")
	b.AddEdge("a", "p", "b")
	b.SetAttr("a", "w", graph.Int(5))
	b.SetAttr("b", "w", graph.Int(5))
	b.SetAttr("c", "w", graph.Int(7))
	g := b.Freeze()

	// Edge satisfied by either a real p-edge or equal weights.
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "y", Label: "B", Distinguished: true},
		},
		Edges: []core.Edge{{
			From: 0, To: 1, Label: core.Wildcard,
			Match: core.Or{
				L: core.EdgeIs{X: 0, Y: 1, Label: "p"},
				R: core.AttrCmpAttr{X: 0, AttrX: "w", Op: core.Eq, Y: 1, AttrY: "w"},
			},
		}},
	}
	want := core.EnumerateNaive(p, g).Names(g)
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(want) != len(got) {
		t.Fatalf("naive %v vs omatch %v", want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("naive %v vs omatch %v", want, got)
		}
	}
	// Sanity: (a,b) matches via both disjuncts, (a,c) via neither.
	if len(got) != 1 || got[0] != "a,b" {
		t.Fatalf("got %v", got)
	}
}

// TestDependencyCycle: two vertices whose matching conditions reference
// each other still evaluate correctly (ordering is best-effort; the
// remaining-variable counters guarantee correctness).
func TestDependencyCycle(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("u1", "A")
	b.AddLabel("u1", "Mark")
	b.AddLabel("u2", "A")
	b.AddLabel("v1", "B")
	b.AddLabel("v1", "Mark")
	b.AddLabel("v2", "B")
	b.AddEdge("u1", "p", "v1")
	b.AddEdge("u2", "p", "v2")
	g := b.Freeze()

	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "A", Distinguished: true,
				Match: core.LabelIs{X: 1, Label: "Mark"}}, // x's condition looks at y
			{Name: "y", Label: "B", Distinguished: true,
				Match: core.LabelIs{X: 0, Label: "Mark"}}, // y's condition looks at x
		},
		Edges: []core.Edge{{From: 0, To: 1, Label: "p"}},
	}
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(got) != 1 || got[0] != "u1,v1" {
		t.Fatalf("got %v, want [u1,v1]", got)
	}
}

// TestSameAsCondition: the equality extension used by GenOGP's gated
// justifications.
func TestSameAsCondition(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("a", "A")
	b.AddLabel("b", "A")
	b.AddEdge("a", "p", "a") // self loop
	b.AddEdge("a", "p", "b")
	g := b.Freeze()
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "y", Label: "A", Distinguished: true,
				Match: core.SameAs{X: 0, Y: 1}},
		},
		Edges: []core.Edge{{From: 0, To: 1, Label: "p"}},
	}
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(got) != 1 || got[0] != "a,a" {
		t.Fatalf("got %v, want only the self-loop", got)
	}
}

// TestOmittedVertexInSameAs: SameAs referencing an omitted vertex is
// false, so the justification disjunct dies while others may survive.
func TestOmittedVertexInSameAs(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("a", "A")
	b.AddLabel("k", "Key")
	g := b.Freeze()
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "z", Label: core.Wildcard, Distinguished: true,
				Omit: core.LabelIs{X: 0, Label: "A"}},
			{Name: "w", Label: core.Wildcard, Distinguished: true,
				Omit: core.Or{
					L: core.SameAs{X: 1, Y: 2}, // dead when z is ⊥
					R: core.LabelIs{X: 0, Label: "A"},
				}},
		},
		Edges: []core.Edge{
			{From: 0, To: 1, Label: "p"},
			{From: 1, To: 2, Label: "p"},
		},
	}
	want := core.EnumerateNaive(p, g).Names(g)
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(want) != len(got) {
		t.Fatalf("naive %v vs omatch %v", want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("naive %v vs omatch %v", want, got)
		}
	}
}

// TestExistentialManyWitnesses: many witnesses yield one answer, with far
// fewer steps than the witness cross product.
func TestExistentialManyWitnesses(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("hub", "A")
	b.AddLabel("hub2", "A")
	for i := 0; i < 40; i++ {
		b.AddEdge("hub", "p", fmt.Sprintf("w%d", i))
		b.AddEdge("hub2", "p", fmt.Sprintf("w%d", i))
	}
	g := b.Freeze()
	// q(x) :- A(x), p(x, y), p(x, z): y, z existential.
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "y", Label: core.Wildcard},
			{Name: "z", Label: core.Wildcard},
		},
		Edges: []core.Edge{
			{From: 0, To: 1, Label: "p"},
			{From: 0, To: 2, Label: "p"},
		},
	}
	res, st, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("answers = %d, want 2 (hub, hub2)", res.Len())
	}
	// Existential completion: far fewer steps than the 40×40 witness
	// cross product per hub.
	if st.Steps > 200 {
		t.Fatalf("steps = %d; existential completion not effective", st.Steps)
	}
}

// TestDistinguishedOmittableEnumeration: a distinguished omittable vertex
// contributes both real and ⊥ rows.
func TestDistinguishedOmittableEnumeration(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("s", "Student")
	b.AddLabel("p1", "Prof")
	b.AddEdge("p1", "advises", "s")
	g := b.Freeze()
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "Student", Distinguished: true},
			{Name: "a", Label: "Prof", Distinguished: true,
				Omit: core.LabelIs{X: 0, Label: "Student"}},
		},
		Edges: []core.Edge{{From: 1, To: 0, Label: "advises"}},
	}
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(got) != 2 || got[0] != "s,p1" || got[1] != "s,⊥" {
		t.Fatalf("got %v, want both the real and the ⊥ row", got)
	}
}

// TestEmptyCandidatesOmittableVertex: a vertex whose label does not occur
// in G can still be omitted.
func TestEmptyCandidatesOmittableVertex(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("s", "Student")
	g := b.Freeze()
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "Student", Distinguished: true},
			{Name: "u", Label: "University", Distinguished: true,
				Omit: core.LabelIs{X: 0, Label: "Student"}},
		},
		Edges: []core.Edge{{From: 0, To: 1, Label: "studiesAt"}},
	}
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(got) != 1 || got[0] != "s,⊥" {
		t.Fatalf("got %v", got)
	}
}

// TestTruncatedStats: Stats.Truncated reports exactly "the enumeration
// stopped before exhausting the search space" — false on a complete run,
// true when MaxResults cuts it short (a success) and when MaxSteps does
// (an error), on both the sequential and the parallel path.
func TestTruncatedStats(t *testing.T) {
	b := graph.NewBuilder(nil)
	for i := 0; i < 6; i++ {
		b.AddLabel(fmt.Sprintf("v%d", i), "A")
	}
	g := b.Freeze()
	p := &core.Pattern{
		Vertices: []core.Vertex{{Name: "x", Label: "A", Distinguished: true}},
	}
	for _, workers := range []int{1, 4} {
		// Complete run: all six answers, not truncated.
		res, st, err := Match(p, g, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Truncated {
			t.Fatalf("workers=%d: complete run reported Truncated", workers)
		}
		if res.Len() != 6 {
			t.Fatalf("workers=%d: %d answers, want 6", workers, res.Len())
		}

		// MaxResults truncation: success with exactly the limit.
		res, st, err = Match(p, g, Options{Limits: Limits{MaxResults: 2}, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d MaxResults: %v", workers, err)
		}
		if !st.Truncated || res.Len() != 2 {
			t.Fatalf("workers=%d MaxResults: truncated=%v len=%d, want true/2",
				workers, st.Truncated, res.Len())
		}

		// MaxSteps truncation: ErrLimit and Truncated.
		_, st, err = Match(p, g, Options{Limits: Limits{MaxSteps: 1}, Workers: workers})
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("workers=%d MaxSteps: err=%v, want ErrLimit", workers, err)
		}
		if !st.Truncated {
			t.Fatalf("workers=%d MaxSteps: Truncated=false after ErrLimit", workers)
		}
	}
}
