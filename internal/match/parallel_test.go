package match

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ogpa/internal/core"
	"ogpa/internal/graph"
	"ogpa/internal/rewrite"
)

// TestParallelSequentialEquivalence is the contract of the worker pool:
// for any pattern the parallel backtracker returns byte-identical answers
// (same set, same insertion order) and the same Truncated flag as the
// sequential path. 100 random KBs, each checked at several pool sizes,
// with and without a MaxResults limit.
func TestParallelSequentialEquivalence(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb, abox, q := randomKB(rng)
		g := abox.Graph(nil)
		res, err := rewrite.Generate(q, tb)
		if err != nil {
			continue // rewrite hit a generator limit; nothing to compare
		}
		p := res.Pattern

		seqAns, seqSt, err := Match(p, g, Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: sequential Match: %v", seed, err)
		}
		seqNames := seqAns.Names(g)
		full := make(map[string]bool, seqAns.Len())
		for _, a := range seqAns.Answers() {
			full[a.Key()] = true
		}

		for _, workers := range []int{0, 2, 4, 8} {
			parAns, parSt, err := Match(p, g, Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: Match: %v", seed, workers, err)
			}
			if seqSt.Truncated != parSt.Truncated {
				t.Fatalf("seed %d workers %d: Truncated %v vs sequential %v",
					seed, workers, parSt.Truncated, seqSt.Truncated)
			}
			parNames := parAns.Names(g)
			if fmt.Sprint(seqNames) != fmt.Sprint(parNames) {
				t.Fatalf("seed %d workers %d:\nsequential %v\nparallel   %v\npattern:\n%s",
					seed, workers, seqNames, parNames, p)
			}
		}

		// Truncated runs: answer *identity* may legitimately differ (workers
		// cut different subtrees short once the gate trips), but the count
		// must be exactly MaxResults, every answer must come from the full
		// answer set, and both sides must agree they truncated.
		if seqAns.Len() < 2 {
			continue
		}
		limit := 1 + int(seed)%seqAns.Len()
		limAns, limSt, err := Match(p, g, Options{
			Limits: Limits{MaxResults: limit}, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d limit %d: sequential Match: %v", seed, limit, err)
		}
		parAns, parSt, err := Match(p, g, Options{
			Limits: Limits{MaxResults: limit}, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d limit %d: parallel Match: %v", seed, limit, err)
		}
		if limAns.Len() != limit || parAns.Len() != limit {
			t.Fatalf("seed %d limit %d: sequential %d answers, parallel %d",
				seed, limit, limAns.Len(), parAns.Len())
		}
		if !limSt.Truncated || !parSt.Truncated {
			t.Fatalf("seed %d limit %d: Truncated seq=%v par=%v, want both true",
				seed, limit, limSt.Truncated, parSt.Truncated)
		}
		for _, a := range parAns.Answers() {
			if !full[a.Key()] {
				t.Fatalf("seed %d limit %d: parallel produced answer %s outside the full answer set",
					seed, limit, a.Key())
			}
		}
	}
}

// TestConcurrentMatchSharedGraph is the -race stress test: many Match
// calls (mixed pool sizes, with and without limits) running concurrently
// against one frozen graph and symbol table. Freezing turns any
// accidental query-time Intern into a panic, and the race detector
// flags any unsynchronized sharing between the workers of different
// calls.
func TestConcurrentMatchSharedGraph(t *testing.T) {
	g := fig2Graph()
	g.Symbols.Freeze()
	p := q5Prime()

	want, _, err := Match(p, g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := fmt.Sprint(want.Names(g))

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := Options{Workers: 1 + i%4}
			if i%8 == 7 {
				opt.Limits.MaxResults = 1
			}
			got, st, err := Match(p, g, opt)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			if opt.Limits.MaxResults > 0 {
				if got.Len() > opt.Limits.MaxResults || !st.Truncated && got.Len() < want.Len() {
					t.Errorf("goroutine %d: %d answers, truncated=%v", i, got.Len(), st.Truncated)
				}
				return
			}
			if names := fmt.Sprint(got.Names(g)); names != wantNames {
				t.Errorf("goroutine %d: %s, want %s", i, names, wantNames)
			}
		}(i)
	}
	wg.Wait()
}

// benchGraph builds a KB large enough that the first-level fan-out
// dominates: ~200 A-vertices each rooting a few hundred (y, z)
// extensions, with an attribute-equality condition joining the ends of
// the chain.
func benchGraph() (*graph.Graph, *core.Pattern) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(nil)
	const nA, nB, nC, deg = 200, 400, 400, 24
	name := func(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }
	for i := 0; i < nA; i++ {
		b.AddLabel(name("a", i), "A")
		b.SetAttr(name("a", i), "w", graph.Int(int64(rng.Intn(32))))
	}
	for i := 0; i < nB; i++ {
		b.AddLabel(name("b", i), "B")
	}
	for i := 0; i < nC; i++ {
		b.AddLabel(name("c", i), "C")
		b.SetAttr(name("c", i), "w", graph.Int(int64(rng.Intn(32))))
	}
	for i := 0; i < nA; i++ {
		for k := 0; k < deg; k++ {
			b.AddEdge(name("a", i), "p", name("b", rng.Intn(nB)))
		}
	}
	for i := 0; i < nB; i++ {
		for k := 0; k < deg; k++ {
			b.AddEdge(name("b", i), "q", name("c", rng.Intn(nC)))
		}
	}
	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "y", Label: "B", Distinguished: true},
			{Name: "z", Label: "C", Distinguished: true,
				Match: core.AttrCmpAttr{X: 0, AttrX: "w", Op: core.Eq, Y: 2, AttrY: "w"}},
		},
		Edges: []core.Edge{
			{From: 0, To: 1, Label: "p"},
			{From: 1, To: 2, Label: "q"},
		},
	}
	return b.Freeze(), p
}

// BenchmarkOMatchWorkers measures the worker-pool speedup on the large
// KB. The acceptance bar for the parallel backtracker is >= 1.5x at
// workers=4 over workers=1.
func BenchmarkOMatchWorkers(b *testing.B) {
	g, p := benchGraph()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Match(p, g, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
