package match

import (
	"math/rand"
	"testing"

	"ogpa/internal/core"
	"ogpa/internal/daf"
	"ogpa/internal/perfectref"
	"ogpa/internal/rewrite"
)

func TestDebugSeed4(t *testing.T) {
	rng := rand.New(rand.NewSource(-3719312112692051729))
	tb, abox, q := randomKB(rng)
	g := abox.Graph(nil)
	t.Logf("query: %s", q)
	t.Logf("CIs: %v RIs: %v", tb.CIs, tb.RIs)
	t.Logf("ABox: %v %v", abox.Concepts, abox.Roles)
	u, _ := perfectref.Rewrite(q, tb, perfectref.Limits{})
	want, _, _ := daf.EvalUCQ(u.Queries, g, daf.Limits{})
	res, _ := rewrite.Generate(q, tb)
	naive := core.EnumerateNaive(res.Pattern, g)
	got, _, err := Match(res.Pattern, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("UCQ %v\nnaive %v\nomatch %v", want.Names(g), naive.Names(g), got.Names(g))
	for v, os := range res.OmitSets {
		t.Logf("CO[%s] = %v", res.Pattern.Vertices[v].Name, os)
	}
}
