package match

import (
	"math/rand"
	"testing"

	"ogpa/internal/daf"
	"ogpa/internal/perfectref"
	"ogpa/internal/rewrite"
)

// ucqVsOGP evaluates one randomKB seed both ways and returns the sorted
// answer rows (UCQ reference first).
func ucqVsOGP(t *testing.T, seed int64) (want, got []string, query string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb, abox, q := randomKB(rng)
	g := abox.Graph(nil)

	u, err := perfectref.Rewrite(q, tb, perfectref.Limits{MaxQueries: 5000})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := daf.EvalUCQ(u.Queries, g, daf.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Generate(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := Match(res.Pattern, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ref.Names(g), ans.Names(g), q.String()
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOmissionGateOnOmittedVertex is the regression test for a fixed
// GenOGP bug: when a LazyReduction equality gate in an omission
// justification referred to a vertex that must itself be omitted, the
// compiled SameAs conjunct was unsatisfiable and the OGP lost answers
// the UCQ rewriting finds. The seed is a minimal-ish randomKB instance:
// query q(x) :- p(y, x), q(z, y), q(w, z) whose entire tail y/z/w must
// drop for the answers [b c e]. The fix is two-part: gates over
// omittable vertices degrade to IsOmitted ∨ SameAs, and justifications
// anchored at omittable vertices compose transitively with the anchor's
// own justifications (gate-aware omission cascade in condDeduction).
func TestOmissionGateOnOmittedVertex(t *testing.T) {
	want, got, q := ucqVsOGP(t, -143985124633941825)
	if !equalRows(want, got) {
		t.Fatalf("regression: UCQ answers %v, OGP answers %v (query %s)", want, got, q)
	}
}

// TestKnownBugResidualGenOGPSeeds pins four pre-existing GenOGP
// incompleteness/unsoundness instances surfaced by a 30k-seed sweep (see
// ROADMAP "Open items"). All three predate the omission-gate fix (they
// reproduce on the unpatched tree) and involve derivation orders the
// current justification calculus does not cover:
//
//   - seed 2392402369435569976 over-answers (OGP ⊋ UCQ): an omission
//     justification fires for a mapping PerfectRef cannot derive;
//   - seeds 3913136004195287598, 1644683122221037022 and
//     6913217735738182772 under-answer (OGP ⊊ UCQ): a hub unbound by
//     LazyReduction never receives its own existentially-justified
//     omission conditions, so fringe-dropping derivations through the
//     hub are lost.
//
// While the bugs stand these SKIP (documentation, not a gate); once a
// fix lands the skip paths go dead — then convert to hard failures and
// fold the seeds into the equivalence property test's fixed preamble.
func TestKnownBugResidualGenOGPSeeds(t *testing.T) {
	for _, seed := range []int64{
		2392402369435569976,
		3913136004195287598,
		1644683122221037022,
		6913217735738182772,
	} {
		want, got, q := ucqVsOGP(t, seed)
		if !equalRows(want, got) {
			t.Skipf("known bug still present: seed %d UCQ answers %v, OGP answers %v (query %s)", seed, want, got, q)
		}
	}
	t.Log("previously-failing seeds now pass; convert skips to failures, update ROADMAP")
}
