package match

import (
	"math/rand"
	"testing"

	"ogpa/internal/daf"
	"ogpa/internal/perfectref"
	"ogpa/internal/rewrite"
)

// TestKnownBugOmissionGateOnOmittedVertex pins a known GenOGP bug (see
// ROADMAP "Open items"): when a LazyReduction equality gate in an
// omission justification refers to a vertex that must itself be omitted,
// the compiled SameAs conjunct is unsatisfiable and the OGP loses
// answers the UCQ rewriting finds. The seed below is a minimal-ish
// randomKB instance: query q(x) :- p(y, x), q(z, y), q(w, z) whose
// entire tail y/z/w must drop for the answers [b c e].
//
// While the bug stands the test SKIPs (it is documentation, not a
// gate); once a fix lands it passes and the skip path goes dead — then
// delete the ROADMAP entry and fold this seed into the equivalence
// property test's fixed preamble.
func TestKnownBugOmissionGateOnOmittedVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(-143985124633941825))
	tb, abox, q := randomKB(rng)
	g := abox.Graph(nil)

	u, err := perfectref.Rewrite(q, tb, perfectref.Limits{MaxQueries: 5000})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := daf.EvalUCQ(u.Queries, g, daf.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Generate(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Match(res.Pattern, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, gn := want.Names(g), got.Names(g)
	if len(w) != len(gn) {
		t.Skipf("known bug still present: UCQ answers %v, OGP answers %v (query %s)", w, gn, q)
	}
	for i := range w {
		if w[i] != gn[i] {
			t.Skipf("known bug still present: UCQ answers %v, OGP answers %v (query %s)", w, gn, q)
		}
	}
	t.Log("previously-failing seed now passes; remove this skip, update ROADMAP")
}
