package match

import (
	"math/rand"
	"testing"

	"ogpa/internal/daf"
	"ogpa/internal/perfectref"
	"ogpa/internal/rewrite"
)

// ucqVsOGP evaluates one randomKB seed both ways and returns the sorted
// answer rows (UCQ reference first).
func ucqVsOGP(t *testing.T, seed int64) (want, got []string, query string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb, abox, q := randomKB(rng)
	g := abox.Graph(nil)

	u, err := perfectref.Rewrite(q, tb, perfectref.Limits{MaxQueries: 5000})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := daf.EvalUCQ(u.Queries, g, daf.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Generate(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := Match(res.Pattern, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ref.Names(g), ans.Names(g), q.String()
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOmissionGateOnOmittedVertex is the regression test for a fixed
// GenOGP bug: when a LazyReduction equality gate in an omission
// justification referred to a vertex that must itself be omitted, the
// compiled SameAs conjunct was unsatisfiable and the OGP lost answers
// the UCQ rewriting finds. The seed is a minimal-ish randomKB instance:
// query q(x) :- p(y, x), q(z, y), q(w, z) whose entire tail y/z/w must
// drop for the answers [b c e]. The fix is two-part: gates over
// omittable vertices degrade to IsOmitted ∨ SameAs, and justifications
// anchored at omittable vertices compose transitively with the anchor's
// own justifications (gate-aware omission cascade in condDeduction).
func TestOmissionGateOnOmittedVertex(t *testing.T) {
	want, got, q := ucqVsOGP(t, -143985124633941825)
	if !equalRows(want, got) {
		t.Fatalf("regression: UCQ answers %v, OGP answers %v (query %s)", want, got, q)
	}
}

// TestGatedExistentialRootStaysOutOfEdgeConds is the regression test for
// a fixed GenOGP unsoundness (formerly the over-answering residual seed):
// an existential subsumee of a LazyReduction root reached through a
// concept-inclusion hop (∃P1 ⊑ ∃P2) witnesses the dropped endpoint only
// as a fresh anonymous null, yet condDeduction also registered it as a
// real-edge C^l alternative — silently discarding the reduction's z=kept
// equality gate, which a bare edge disjunct cannot degrade to. On the
// seed instance (query q(x) :- q(x, y), q(z, y), r(w, z); TBox
// ∃q⁻ ⊑ ∃p⁻, ∃r ⊑ ∃p, p⁻ ⊑ q) the leaked alternative r(x,y) let x=d
// match via the real edge r(d,e) with z unconstrained, while the sound
// derivation q(x) :- r(x,_), r(w,x) needs z=x and hence r(w,d). The fix:
// gated roots contribute omission justifications only (where the gate
// survives as a SameAs conjunct); ungated roots keep the edge
// alternative, which is sound because every merged sibling endpoint is
// existential and can follow the anonymous witness.
func TestGatedExistentialRootStaysOutOfEdgeConds(t *testing.T) {
	want, got, q := ucqVsOGP(t, 2392402369435569976)
	if !equalRows(want, got) {
		t.Fatalf("regression: UCQ answers %v, OGP answers %v (query %s)", want, got, q)
	}
}

// TestKnownBugResidualGenOGPSeeds pins the remaining pre-existing GenOGP
// incompleteness instances surfaced by 30k- and 8k-seed sweeps (see
// ROADMAP "Open items" and DESIGN.md "Residual GenOGP incompleteness").
// All of them under-answer (OGP ⊊ UCQ) with the same shape: a hub
// unbound by LazyReduction never receives its own existentially-
// justified omission conditions, so fringe-dropping derivations through
// the hub are lost; the fix is an existential-root extension of the
// justification calculus that deserves its own PR. The formerly listed
// over-answering seed 2392402369435569976 is fixed and now enforced by
// TestGatedExistentialRootStaysOutOfEdgeConds plus the equivalence
// test's fixed preamble.
//
// While the bugs stand these SKIP (documentation, not a gate); once a
// fix lands the skip paths go dead — then convert to hard failures and
// fold the seeds into the equivalence property test's fixed preamble.
func TestKnownBugResidualGenOGPSeeds(t *testing.T) {
	for _, seed := range []int64{
		3913136004195287598,
		1644683122221037022,
		6913217735738182772,
		4271,
	} {
		want, got, q := ucqVsOGP(t, seed)
		if !equalRows(want, got) {
			t.Skipf("known bug still present: seed %d UCQ answers %v, OGP answers %v (query %s)", seed, want, got, q)
		}
	}
	t.Log("previously-failing seeds now pass; convert skips to failures, update ROADMAP")
}
