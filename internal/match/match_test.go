package match

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ogpa/internal/core"
	"ogpa/internal/cq"
	"ogpa/internal/daf"
	"ogpa/internal/dllite"
	"ogpa/internal/graph"
	"ogpa/internal/perfectref"
	"ogpa/internal/rewrite"
	"ogpa/internal/testkb"
)

// fig2Graph and q5Prime mirror the fixtures of the core package tests
// (paper Figure 2 / Examples 4, 5, 11, 12).
func fig2Graph() *graph.Graph {
	b := graph.NewBuilder(nil)
	b.AddLabel("y1", "Teacher")
	b.AddLabel("y2", "Professor")
	b.AddLabel("y3", "Student")
	b.AddLabel("y4", "Student")
	b.AddLabel("y5", "Article")
	b.AddLabel("y6", "Course")
	b.AddEdge("y1", "teaches", "y3")
	b.AddEdge("y1", "teaches", "y4")
	b.AddEdge("y3", "takes", "y6")
	b.AddEdge("y4", "takes", "y6")
	return b.Freeze()
}

func q5Prime() *core.Pattern {
	return &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x1", Label: core.Wildcard, Distinguished: true,
				Match: core.Or{L: core.LabelIs{X: 0, Label: "Professor"}, R: core.LabelIs{X: 0, Label: "Teacher"}}},
			{Name: "x2", Label: "Student", Distinguished: true},
			{Name: "x3", Label: core.Wildcard, Distinguished: true,
				Match: core.Or{
					L: core.And{L: core.LabelIs{X: 2, Label: "Article"}, R: core.LabelIs{X: 0, Label: "Professor"}},
					R: core.And{L: core.LabelIs{X: 2, Label: "Course"}, R: core.LabelIs{X: 0, Label: "Teacher"}},
				}},
			{Name: "x4", Label: "University", Distinguished: true,
				Omit: core.LabelIs{X: 0, Label: "Teacher"}},
		},
		Edges: []core.Edge{
			{From: 0, To: 1, Label: "teaches"},
			{From: 1, To: 2, Label: core.Wildcard,
				Match: core.Or{
					L: core.And{L: core.EdgeIs{X: 1, Y: 2, Label: "publishes"}, R: core.LabelIs{X: 0, Label: "Professor"}},
					R: core.And{L: core.EdgeIs{X: 1, Y: 2, Label: "takes"}, R: core.LabelIs{X: 0, Label: "Teacher"}},
				}},
			{From: 0, To: 3, Label: "worksFor"},
		},
	}
}

// TestExample11And12 reproduces the paper's Examples 11/12: OMatch on Q5'
// finds exactly h1 and h2 with x4 omitted.
func TestExample11And12(t *testing.T) {
	g := fig2Graph()
	res, st, err := Match(q5Prime(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	want := []string{"y1,y3,y6,⊥", "y1,y4,y6,⊥"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("matches = %v, want %v", got, want)
	}
	if st.BDDNodes == 0 || st.Steps == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

// TestElearningExample reproduces the paper's Example 1/4(1): resources
// categorized as Hardware-or-subclasses uploaded in 2023.
func TestElearningExample(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("r1", "Resource")
	b.AddLabel("r2", "Resource")
	b.AddLabel("r3", "Resource")
	b.AddLabel("cpu", "Processor")
	b.AddLabel("ram", "Memory")
	b.AddLabel("gpu", "Hardware")
	b.AddEdge("r1", "category", "cpu")
	b.AddEdge("r2", "category", "ram")
	b.AddEdge("r3", "category", "gpu")
	b.SetAttr("r1", "year", graph.Int(2023))
	b.SetAttr("r2", "year", graph.Int(2021))
	b.SetAttr("r3", "year", graph.Int(2023))
	g := b.Freeze()

	p := &core.Pattern{
		Vertices: []core.Vertex{
			{Name: "x", Label: "Resource", Distinguished: true,
				Match: core.AttrCmpConst{X: 0, Attr: "year", Op: core.Eq, C: graph.Int(2023)}},
			{Name: "z", Label: core.Wildcard,
				Match: core.OrAll(
					core.LabelIs{X: 1, Label: "Hardware"},
					core.LabelIs{X: 1, Label: "Processor"},
					core.LabelIs{X: 1, Label: "Memory"},
					core.LabelIs{X: 1, Label: "IODevice"},
				)},
		},
		Edges: []core.Edge{{From: 0, To: 1, Label: "category"}},
	}
	res, _, err := Match(p, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(g)
	if len(got) != 2 || got[0] != "r1" || got[1] != "r3" {
		t.Fatalf("answers = %v, want [r1 r3]", got)
	}
}

func TestOmittedDistinguishedInAnswer(t *testing.T) {
	// x4 is distinguished and omitted: the answer tuple carries ⊥ (paper
	// Example 5).
	g := fig2Graph()
	res, _, err := Match(q5Prime(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers() {
		if a[3] != core.Omitted {
			t.Fatalf("x4 should be ⊥ in %v", a)
		}
	}
}

func TestStaticBFSVariant(t *testing.T) {
	g := fig2Graph()
	a, _, err := Match(q5Prime(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Match(q5Prime(), g, Options{Order: OrderStaticBFS})
	if err != nil {
		t.Fatal(err)
	}
	an, bn := a.Names(g), b.Names(g)
	if len(an) != len(bn) {
		t.Fatalf("adaptive %v vs static %v", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("adaptive %v vs static %v", an, bn)
		}
	}
}

func TestLimits(t *testing.T) {
	b := graph.NewBuilder(nil)
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			b.AddEdge(fmt.Sprintf("l%d", i), "p", fmt.Sprintf("r%d", j))
		}
	}
	g := b.Freeze()
	p := core.FromCQ(cq.MustParse(`q(x, y) :- p(x, y)`))

	res, _, err := Match(p, g, Options{Limits: Limits{MaxResults: 7}})
	if err != nil {
		t.Fatalf("MaxResults should truncate cleanly: %v", err)
	}
	if res.Len() != 7 {
		t.Fatalf("res = %d", res.Len())
	}
	if _, _, err := Match(p, g, Options{Limits: Limits{MaxSteps: 3}}); err != ErrLimit {
		t.Fatalf("MaxSteps: err = %v", err)
	}
	_, _, _ = Match(p, g, Options{Limits: Limits{Deadline: time.Now().Add(-time.Second)}})
}

// TestAgainstNaiveRandomOGPs cross-checks OMatch against the brute-force
// reference on random graphs and random OGPs with disjunctive conditions
// and omission conditions.
func TestAgainstNaiveRandomOGPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(nil)
		labels := []string{"A", "B", "C"}
		preds := []string{"p", "q"}
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			b.AddLabel(fmt.Sprintf("v%d", i), labels[rng.Intn(len(labels))])
			if rng.Intn(2) == 0 {
				b.SetAttr(fmt.Sprintf("v%d", i), "w", graph.Int(int64(rng.Intn(4))))
			}
		}
		for i := 0; i < n*2; i++ {
			b.AddEdge(fmt.Sprintf("v%d", rng.Intn(n)), preds[rng.Intn(len(preds))], fmt.Sprintf("v%d", rng.Intn(n)))
		}
		g := b.Freeze()

		// Random pattern: 2-4 vertices in a path, with random conditions.
		nv := 2 + rng.Intn(3)
		p := &core.Pattern{}
		for i := 0; i < nv; i++ {
			v := core.Vertex{Name: fmt.Sprintf("u%d", i), Label: core.Wildcard, Distinguished: true}
			switch rng.Intn(4) {
			case 0:
				v.Label = labels[rng.Intn(len(labels))]
			case 1:
				v.Match = core.Or{
					L: core.LabelIs{X: i, Label: labels[rng.Intn(len(labels))]},
					R: core.LabelIs{X: i, Label: labels[rng.Intn(len(labels))]},
				}
			case 2:
				v.Match = core.AttrCmpConst{X: i, Attr: "w", Op: core.Ge, C: graph.Int(int64(rng.Intn(3)))}
			}
			p.Vertices = append(p.Vertices, v)
		}
		for i := 1; i < nv; i++ {
			e := core.Edge{From: i - 1, To: i, Label: preds[rng.Intn(len(preds))]}
			if rng.Intn(2) == 0 {
				e.From, e.To = e.To, e.From
			}
			switch rng.Intn(3) {
			case 0:
				e.Label = core.Wildcard
			case 1:
				// Disjunctive edge condition with both orientations.
				e.Label = core.Wildcard
				e.Match = core.Or{
					L: core.EdgeIs{X: e.From, Y: e.To, Label: preds[rng.Intn(len(preds))]},
					R: core.EdgeIs{X: e.To, Y: e.From, Label: preds[rng.Intn(len(preds))]},
				}
			}
			p.Edges = append(p.Edges, e)
		}
		// Random omission condition on a non-isolated vertex, referencing
		// another vertex's label (global condition + ⊥ candidate),
		// sometimes gated with an equality (as GenOGP's reductions emit).
		if nv >= 2 && rng.Intn(2) == 0 {
			u := rng.Intn(nv)
			other := (u + 1) % nv
			var omit core.Cond = core.LabelIs{X: other, Label: labels[rng.Intn(len(labels))]}
			if nv >= 3 && rng.Intn(2) == 0 {
				omit = core.Or{L: omit, R: core.And{
					L: core.SameAs{X: (u + 2) % nv, Y: other},
					R: core.EdgeExists{X: other, Label: preds[rng.Intn(len(preds))], Out: rng.Intn(2) == 0},
				}}
			}
			p.Vertices[u].Omit = omit
		}

		want := core.EnumerateNaive(p, g).Names(g)
		got, _, err := Match(p, g, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		gn := got.Names(g)
		if len(want) != len(gn) {
			t.Logf("seed %d:\npattern:\n%s\nnaive %v\nomatch %v", seed, p, want, gn)
			return false
		}
		for i := range want {
			if want[i] != gn[i] {
				t.Logf("seed %d: naive %v vs omatch %v", seed, want, gn)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomKB mirrors the rewrite package's generator (kept in sync manually;
// both are small).
// randomKB delegates to the shared testkb generator so seeds recorded
// here replay identically in the other suites (and vice versa).
func randomKB(rng *rand.Rand) (*dllite.TBox, *dllite.ABox, *cq.Query) {
	return testkb.RandomKB(rng)
}

// testWorkers reads the OGPA_WORKERS environment variable, letting CI
// re-run the randomized suites through the parallel backtracker
// (Workers > 1) without a separate test body. Unset or invalid means 1
// (the sequential path).
func testWorkers() int {
	if s := os.Getenv("OGPA_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// TestFullPipelineEquivalence is the paper's end-to-end claim: GenOGP +
// OMatch computes exactly the certain answers that PerfectRef + UCQ
// evaluation computes, across random KBs. A fixed preamble replays
// previously-failing seeds (now regressions) before the randomized
// sweep.
func TestFullPipelineEquivalence(t *testing.T) {
	workers := testWorkers()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb, abox, q := randomKB(rng)
		g := abox.Graph(nil)

		u, err := perfectref.Rewrite(q, tb, perfectref.Limits{MaxQueries: 5000})
		if err != nil {
			return true
		}
		want, _, err := daf.EvalUCQ(u.Queries, g, daf.Limits{})
		if err != nil {
			return false
		}

		res, err := rewrite.Generate(q, tb)
		if err != nil {
			return false
		}
		got, _, err := Match(res.Pattern, g, Options{Workers: workers})
		if err != nil {
			t.Logf("seed %d: Match: %v", seed, err)
			return false
		}
		w, gn := want.Names(g), got.Names(g)
		if len(w) != len(gn) {
			t.Logf("seed %d: query %s\nUCQ answers %v\nOGP answers %v\nOGP:\n%s", seed, q, w, gn, res.Pattern)
			return false
		}
		for i := range w {
			if w[i] != gn[i] {
				t.Logf("seed %d: %v vs %v", seed, w, gn)
				return false
			}
		}
		return true
	}
	for _, seed := range []int64{
		-143985124633941825,  // omission gate on an omitted vertex (fixed)
		2392402369435569976,  // gated existential root leaked into C^l (fixed)
	} {
		if !f(seed) {
			t.Fatalf("fixed seed %d regressed", seed)
		}
	}
	// Deterministic sweep: GenOGP has known residual incompleteness at
	// roughly 1e-4 per seed (see TestKnownBugResidualGenOGPSeeds), so a
	// time-seeded 1000-seed run flakes about once in ten runs on bugs
	// this PR does not touch. Exploration for *new* seeds belongs in a
	// manual sweep, not in the CI gate.
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(20260805))}); err != nil {
		t.Fatal(err)
	}
}

// TestRunningExampleWithOMatch: the paper's Ann example through the real
// pipeline (GenOGP + OMatch instead of the naive matcher).
func TestRunningExampleWithOMatch(t *testing.T) {
	tb, err := dllite.ParseTBox(strings.NewReader(`
Student SubClassOf some takesCourse
PhD SubClassOf Student
PhD SubClassOf some advisorOf-
`))
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse(`q(x) :- advisorOf(y1, x), advisorOf(y1, y2), advisorOf(y1, y3), takesCourse(x, z)`)
	res, err := rewrite.Generate(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	abox := &dllite.ABox{}
	abox.AddConcept("PhD", "Ann")
	abox.AddConcept("Student", "Bob") // student without advisor: not an answer
	g := abox.Graph(nil)
	got, _, err := Match(res.Pattern, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := got.Names(g)
	if len(names) != 1 || names[0] != "Ann" {
		t.Fatalf("answers = %v, want [Ann]", names)
	}
}

func TestAtomCacheUsed(t *testing.T) {
	g := fig2Graph()
	_, st, err := Match(q5Prime(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.AtomEvals == 0 {
		t.Fatal("expected atom evaluations")
	}
}

func BenchmarkOMatchQ5Prime(b *testing.B) {
	g := fig2Graph()
	p := q5Prime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Match(p, g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
