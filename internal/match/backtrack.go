package match

import (
	"errors"

	"ogpa/internal/core"
	"ogpa/internal/graph"
)

// runtime state for OMBacktrack.
type runtime struct {
	m       *matcher
	mapping core.Mapping // Omitted doubles as "unmapped"; see mapped flags
	mapped  []bool
	// remaining[ci]: number of still-unmapped variables of condition ci;
	// a condition is decided exactly when its counter hits zero.
	remaining []int
	out       *core.AnswerSet
}

// backtrack implements OMBacktrack (paper Section V-B): adaptive or static
// ordering over the OMDAG, ⊥ assignments for omittable vertices, and
// condition evaluation through the shared BDD as soon as variables are
// mapped.
func (m *matcher) backtrack(out *core.AnswerSet) error {
	n := len(m.p.Vertices)
	rt := &runtime{
		m:         m,
		mapping:   make(core.Mapping, n),
		mapped:    make([]bool, n),
		remaining: make([]int, len(m.conds)),
		out:       out,
	}
	for i := range rt.mapping {
		rt.mapping[i] = core.Omitted
	}
	for ci, c := range m.conds {
		rt.remaining[ci] = len(c.vars)
	}

	err := rt.rec(0)
	if errors.Is(err, ErrLimit) && m.opts.Limits.MaxResults > 0 && out.Len() >= m.opts.Limits.MaxResults {
		return nil // truncation at MaxResults is a successful run
	}
	return err
}

// assign maps u (to a vertex or ⊥) and evaluates every condition this
// decides. It reports false when a decided condition fails; the caller must
// still call unassign to roll the counters back.
func (rt *runtime) assign(u int, v graph.VID) bool {
	rt.mapping[u] = v
	rt.mapped[u] = true
	ok := true
	for _, ci := range rt.m.condsOf[u] {
		rt.remaining[ci]--
		if ok && rt.remaining[ci] == 0 && !rt.checkCond(ci) {
			ok = false
		}
	}
	return ok
}

func (rt *runtime) unassign(u int) {
	for _, ci := range rt.m.condsOf[u] {
		rt.remaining[ci]++
	}
	rt.mapping[u] = core.Omitted
	rt.mapped[u] = false
}

// checkCond evaluates a fully-decided condition through the shared BDD.
func (rt *runtime) checkCond(ci int) bool {
	c := rt.m.conds[ci]
	switch c.kind {
	case condVertexMatch:
		if rt.mapping[c.owner] == core.Omitted {
			return true // owner omitted: the omission condition governs
		}
	case condVertexOmit:
		if rt.mapping[c.owner] != core.Omitted {
			return true // owner matched: the matching condition governs
		}
	case condEdgeMatch:
		e := rt.m.p.Edges[c.owner]
		if rt.mapping[e.From] == core.Omitted || rt.mapping[e.To] == core.Omitted {
			return true // edge excused by an omitted endpoint
		}
	}
	return rt.m.bdd.Eval(c.ref, func(atom int) bool {
		return rt.m.evalAtom(atom, rt.mapping)
	})
}

// earlyReject uses partial BDD evaluation to kill branches whose
// already-applicable conditions are forced false.
func (rt *runtime) earlyReject(u int) bool {
	for _, ci := range rt.m.condsOf[u] {
		c := rt.m.conds[ci]
		if rt.remaining[ci] == 0 {
			continue // already decided by checkCond
		}
		switch c.kind {
		case condVertexMatch:
			if !rt.mapped[c.owner] || rt.mapping[c.owner] == core.Omitted {
				continue
			}
		case condVertexOmit:
			if !rt.mapped[c.owner] || rt.mapping[c.owner] != core.Omitted {
				continue
			}
		case condEdgeMatch:
			e := rt.m.p.Edges[c.owner]
			if !rt.mapped[e.From] || !rt.mapped[e.To] {
				continue
			}
			if rt.mapping[e.From] == core.Omitted || rt.mapping[e.To] == core.Omitted {
				continue
			}
		}
		val, known := rt.m.bdd.EvalPartial(c.ref, func(atom int) (bool, bool) {
			for _, w := range rt.m.atomVars[atom] {
				if !rt.mapped[w] {
					return false, false
				}
			}
			return rt.m.evalAtom(atom, rt.mapping), true
		})
		if known && !val {
			return true
		}
	}
	return false
}

// candidates returns the viable candidates of u under the current partial
// mapping: the intersection of CS adjacency lists from mapped (non-⊥)
// structural parents, or the refined candidate set when no such parent
// constrains u.
func (rt *runtime) candidates(u int) []graph.VID {
	m := rt.m
	var base []graph.VID
	first := true
	for _, di := range m.parentEdges[u] {
		de := m.dagEdges[di]
		if m.adj[di] == nil { // non-indexable edge: handled as a condition
			continue
		}
		if !rt.mapped[de.parent] || rt.mapping[de.parent] == core.Omitted {
			continue
		}
		vs := m.adj[di][rt.mapping[de.parent]]
		if len(vs) == 0 {
			if m.canOmit[u] {
				return nil // only ⊥ remains possible
			}
			return nil
		}
		if first {
			base = vs
			first = false
			continue
		}
		merged := make([]graph.VID, 0, minInt(len(base), len(vs)))
		i, j := 0, 0
		for i < len(base) && j < len(vs) {
			switch {
			case base[i] == vs[j]:
				merged = append(merged, base[i])
				i++
				j++
			case base[i] < vs[j]:
				i++
			default:
				j++
			}
		}
		base = merged
		if len(base) == 0 {
			return nil
		}
	}
	if first {
		return m.cand[u]
	}
	return base
}

// pickNext selects the next vertex to assign.
func (rt *runtime) pickNext() int {
	m := rt.m
	if m.opts.Order == OrderStaticBFS {
		for _, u := range m.order {
			if !rt.mapped[u] {
				return u
			}
		}
		return -1
	}
	best, bestScore := -1, 1<<62
	for _, u := range m.order {
		if rt.mapped[u] {
			continue
		}
		ready := true
		for _, di := range m.parentEdges[u] {
			if !rt.mapped[m.dagEdges[di].parent] {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		score := len(rt.candidates(u))
		if m.canOmit[u] {
			score++ // the ⊥ branch
		}
		if score < bestScore {
			bestScore = score
			best = u
		}
	}
	if best < 0 {
		// Dependency cycle stalled the frontier: fall back to the first
		// unmapped vertex in order (conditions are still checked when
		// decided, so correctness is unaffected).
		for _, u := range m.order {
			if !rt.mapped[u] {
				return u
			}
		}
	}
	return best
}

// allRemainingExistential reports whether every unmapped vertex is
// non-distinguished: the projected answer tuple is then fully determined,
// and only the *existence* of a completion matters.
func (rt *runtime) allRemainingExistential() bool {
	for u, v := range rt.m.p.Vertices {
		if v.Distinguished && !rt.mapped[u] {
			return false
		}
	}
	return true
}

func (rt *runtime) rec(depth int) error {
	m := rt.m
	if err := m.tick(); err != nil {
		return err
	}
	if depth == len(m.p.Vertices) {
		rt.out.Add(core.Project(m.p, rt.mapping))
		if m.opts.Limits.MaxResults > 0 && rt.out.Len() >= m.opts.Limits.MaxResults {
			return ErrLimit
		}
		return nil
	}
	// Existential completion: once every distinguished vertex is assigned,
	// the answer tuple is fixed — find one completion and stop, instead of
	// enumerating the cross product of existential witnesses.
	if depth > 0 && !m.opts.DisableExistentialCompletion && rt.allRemainingExistential() {
		found, err := rt.exists(depth)
		if err != nil {
			return err
		}
		if found {
			rt.out.Add(core.Project(m.p, rt.mapping))
			if m.opts.Limits.MaxResults > 0 && rt.out.Len() >= m.opts.Limits.MaxResults {
				return ErrLimit
			}
		}
		return nil
	}
	u := rt.pickNext()
	if u < 0 {
		return nil
	}

	try := func(v graph.VID) error {
		ok := rt.assign(u, v)
		if ok && v != core.Omitted && !m.opts.DisableEarlyReject {
			// Structural DAG edges whose child was mapped earlier than this
			// parent (possible under forced orders) are covered by the edge
			// conditions, which assign() just checked. Early rejection via
			// partial evaluation prunes deeper work.
			ok = !rt.earlyReject(u)
		}
		var err error
		if ok {
			err = rt.rec(depth + 1)
		}
		rt.unassign(u)
		return err
	}

	for _, v := range rt.candidates(u) {
		if err := try(v); err != nil {
			return err
		}
	}
	if m.canOmit[u] {
		if err := try(core.Omitted); err != nil {
			return err
		}
	}
	return nil
}

// exists searches for any one completion of the existential remainder.
func (rt *runtime) exists(depth int) (bool, error) {
	m := rt.m
	if err := m.tick(); err != nil {
		return false, err
	}
	if depth == len(m.p.Vertices) {
		return true, nil
	}
	u := rt.pickNext()
	if u < 0 {
		return false, nil
	}
	try := func(v graph.VID) (bool, error) {
		ok := rt.assign(u, v)
		if ok && v != core.Omitted && !m.opts.DisableEarlyReject {
			ok = !rt.earlyReject(u)
		}
		var found bool
		var err error
		if ok {
			found, err = rt.exists(depth + 1)
		}
		rt.unassign(u)
		return found, err
	}
	// ⊥ first: for omittable witnesses it is the cheapest completion.
	if m.canOmit[u] {
		found, err := try(core.Omitted)
		if err != nil || found {
			return found, err
		}
	}
	for _, v := range rt.candidates(u) {
		found, err := try(v)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
