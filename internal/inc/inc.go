// Package inc is the incremental-reasoning subsystem: it sits on a
// delta.Store's committed-batch stream (delta.Watcher) and keeps
// registered reasoning states — datalog fixpoints, chase
// materializations, consistency indexes — maintained batch-by-batch
// instead of rebuilt from scratch at every epoch.
//
// A Manager owns one watcher and an ABox mirror of the store's current
// contents. Chains register against the manager and are advanced lazily:
// every Answer/Check call first drains the watcher under the manager's
// lock and applies each pending batch (translated from triples to ABox
// assertions) to every registered chain, then evaluates against the
// maintained state and returns the epoch the answer is valid at. Lazy
// advancement means an idle manager costs nothing but the watcher's
// queued batches, and every answer is exact for the epoch it reports.
//
// Error isolation: a chain whose incremental apply fails (limit
// exceeded, malformed rule) is marked broken and silently rebuilt from
// the manager's mirror on its next use; other chains are unaffected.
//
// This package is on the internsafety hot-path list: its maps are keyed
// by assertion structs or integers, never raw strings, and it compares
// strings only against compile-time constants.
package inc

import (
	"errors"
	"fmt"
	"sync"

	"ogpa/internal/core"
	"ogpa/internal/cq"
	"ogpa/internal/daf"
	"ogpa/internal/datalog"
	"ogpa/internal/delta"
	"ogpa/internal/dllite"
	"ogpa/internal/graph"
	"ogpa/internal/rdf"
	"ogpa/internal/saturate"
)

// ErrClosed reports use of a closed manager.
var ErrClosed = errors.New("inc: manager closed")

// Stats counts the manager's maintenance work, for /stats surfaces.
type Stats struct {
	Epoch      uint64 `json:"epoch"`       // epoch all chains are advanced to
	Batches    uint64 `json:"batches"`     // committed batches applied
	Triples    uint64 `json:"triples"`     // triples translated into assertions
	Attributes uint64 `json:"attributes"`  // literal-object triples skipped
	Chains     int    `json:"chains"`      // registered chains
	Rebuilds   uint64 `json:"rebuilds"`    // chains rebuilt after an apply error
	DatalogIns uint64 `json:"datalog_ins"` // facts added across datalog applies
	DatalogDel uint64 `json:"datalog_del"` // facts overdeleted across datalog applies
}

// Manager maintains incremental reasoning state over one delta.Store.
// All methods are safe for concurrent use; chain evaluation is
// serialized under the manager's lock so every answer observes a fully
// applied epoch, never a half-advanced one.
type Manager struct {
	nameFn func(string) string

	// gate serializes advancement, registration and chain evaluation
	// (the delta.Store gate idiom); every field below is guarded by
	// gate.mu.
	gate struct {
		mu sync.Mutex
	}
	w      *delta.Watcher
	epoch  uint64
	closed bool

	// ABox mirror of the store at epoch. Struct-keyed sets (not string
	// keys) so membership stays internsafety-clean; the mirror is the
	// rebuild source for broken chains and the base for late-registered
	// ones.
	concepts map[dllite.ConceptAssertion]bool
	roles    map[dllite.RoleAssertion]bool

	chains []chain
	stats  Stats
}

// chain is one maintained reasoning state.
type chain interface {
	apply(ins, del *dllite.ABox, m *Manager) error
	rebuild(base *dllite.ABox) error
}

// NewManager registers a watcher on store and mirrors the registration
// snapshot. nameFn rewrites IRIs exactly as the store's own mutator does
// (identity when nil); pass the same function the store was configured
// with or translated assertions will not line up with its graph.
func NewManager(store *delta.Store, nameFn func(string) string) *Manager {
	if nameFn == nil {
		nameFn = func(s string) string { return s }
	}
	w, sn := store.Watch()
	m := &Manager{
		nameFn:   nameFn,
		w:        w,
		epoch:    sn.Epoch(),
		concepts: map[dllite.ConceptAssertion]bool{},
		roles:    map[dllite.RoleAssertion]bool{},
	}
	m.mirrorIn(dllite.ABoxFromGraph(sn.Graph()), nil)
	return m
}

// Close unregisters the watcher. Registered chains keep answering at
// their last advanced epoch until callers drop them; advancing past
// close returns ErrClosed.
func (m *Manager) Close() {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	if !m.closed {
		m.closed = true
		m.w.Close()
	}
}

// Epoch reports the epoch every registered chain is advanced to.
func (m *Manager) Epoch() uint64 {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	return m.epoch
}

// Stats snapshots the maintenance counters.
func (m *Manager) Stats() Stats {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	st := m.stats
	st.Epoch = m.epoch
	st.Chains = len(m.chains)
	return st
}

// Advance drains all pending batches and applies them to every chain,
// returning the resulting epoch. Callers normally never need this —
// every Answer/Check advances implicitly — but a subscription hub calls
// it once per wake-up before evaluating its standing queries.
func (m *Manager) Advance() (uint64, error) {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	err := m.advanceLocked()
	return m.epoch, err
}

// Ready exposes the watcher's wake-up channel (edge-triggered): a
// receive means new batches may be pending. Subscription hubs select on
// it and then call Advance.
func (m *Manager) Ready() <-chan struct{} { return m.w.Ready() }

// advanceLocked drains the watcher and applies each batch in publish
// order: mirror first, then every chain. Chain errors break only that
// chain (flagged for rebuild); translation and mirror maintenance are
// infallible.
func (m *Manager) advanceLocked() error {
	if m.closed {
		return ErrClosed
	}
	for _, b := range m.w.Poll() {
		ins, del := m.translate(b)
		m.mirrorIn(ins, del)
		for _, c := range m.chains {
			//lint:ignore droppederr the chain records its own failure (broken flag, rebuilt on next use); the batch must keep applying to sibling chains
			_ = c.apply(ins, del, m)
		}
		m.epoch = b.Epoch
		m.stats.Batches++
	}
	return nil
}

// translate converts one committed batch into assertion sets under the
// same type-aware mapping rdf.ApplyTriple uses: rdf:type triples become
// concept assertions, resource-object triples role assertions, and
// literal-object triples are attributes, which no ABox-based reasoning
// pipeline consumes — they are counted and skipped.
func (m *Manager) translate(b delta.Batch) (ins, del *dllite.ABox) {
	a := &dllite.ABox{}
	for _, t := range b.Triples {
		m.stats.Triples++
		switch {
		case t.Predicate == rdf.TypePredicate && t.Kind == rdf.ObjectIRI:
			a.AddConcept(m.nameFn(t.Object), m.nameFn(t.Subject))
		case t.Kind == rdf.ObjectIRI:
			a.AddRole(m.nameFn(t.Predicate), m.nameFn(t.Subject), m.nameFn(t.Object))
		default:
			m.stats.Attributes++
		}
	}
	if b.Del {
		return &dllite.ABox{}, a
	}
	return a, &dllite.ABox{}
}

// mirrorIn applies an assertion delta to the mirror (deletions first,
// matching the store's remove-then-add batch semantics).
func (m *Manager) mirrorIn(ins, del *dllite.ABox) {
	if del != nil {
		for _, c := range del.Concepts {
			delete(m.concepts, c)
		}
		for _, r := range del.Roles {
			delete(m.roles, r)
		}
	}
	if ins != nil {
		for _, c := range ins.Concepts {
			m.concepts[c] = true
		}
		for _, r := range ins.Roles {
			m.roles[r] = true
		}
	}
}

// mirrorABox materializes the mirror as a plain ABox (set order is
// unspecified; all consumers treat assertion lists as sets).
func (m *Manager) mirrorABox() *dllite.ABox {
	a := &dllite.ABox{}
	for c := range m.concepts {
		a.AddConcept(c.Concept, c.Ind)
	}
	for r := range m.roles {
		a.AddRole(r.Role, r.Sub, r.Obj)
	}
	return a
}

// use advances to the newest epoch and rebuilds c from the mirror if a
// previous batch broke it. Called at the top of every chain evaluation,
// under the manager gate.
func (m *Manager) use(c *chainState) error {
	if err := m.advanceLocked(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	if c.broken {
		if err := c.self.rebuild(m.mirrorABox()); err != nil {
			return fmt.Errorf("inc: chain rebuild at epoch %d: %w", m.epoch, err)
		}
		c.broken = false
		m.stats.Rebuilds++
	}
	return nil
}

// chainState is the bookkeeping every concrete chain embeds.
type chainState struct {
	self   chain
	broken bool
}

// fail marks the chain broken and passes err through.
func (c *chainState) fail(err error) error {
	if err != nil {
		c.broken = true
	}
	return err
}

// register wires a chain into the manager after draining pending
// batches, so the chain's base state is exactly the mirror at m.epoch.
func (m *Manager) register(c chain) error {
	if err := m.advanceLocked(); err != nil {
		return err
	}
	if err := c.rebuild(m.mirrorABox()); err != nil {
		return err
	}
	m.chains = append(m.chains, c)
	return nil
}

// ---------------------------------------------------------------------------
// Datalog chain

// DatalogChain maintains the semi-naive fixpoint of one datalog program
// (the rewriting of one standing query) across epochs: insertions seed a
// continuation round, deletions run DRed, and Answer only re-joins the
// residual UCQ over the maintained database.
type DatalogChain struct {
	chainState
	m     *Manager
	prog  *datalog.Program
	lim   datalog.Limits
	state *datalog.State
}

// RegisterDatalog builds a maintained fixpoint for prog over the store's
// current contents. lim bounds both the initial evaluation and every
// per-batch apply.
func (m *Manager) RegisterDatalog(prog *datalog.Program, lim datalog.Limits) (*DatalogChain, error) {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	c := &DatalogChain{m: m, prog: prog, lim: lim}
	c.self = c
	if err := m.register(c); err != nil {
		return nil, err
	}
	return c, nil
}

// aboxFacts flattens an assertion delta into EDB facts.
func aboxFacts(a *dllite.ABox) []datalog.Fact {
	var fs []datalog.Fact
	for _, c := range a.Concepts {
		fs = append(fs, datalog.Fact{Pred: c.Concept, Args: datalog.Tuple{c.Ind}})
	}
	for _, r := range a.Roles {
		fs = append(fs, datalog.Fact{Pred: r.Role, Args: datalog.Tuple{r.Sub, r.Obj}})
	}
	return fs
}

func (c *DatalogChain) apply(ins, del *dllite.ABox, m *Manager) error {
	if c.broken {
		return nil // already pending rebuild; skip to keep applies cheap
	}
	st, err := c.state.Apply(aboxFacts(ins), aboxFacts(del), c.lim)
	m.stats.DatalogIns += uint64(st.Added)
	m.stats.DatalogDel += uint64(st.Overdeleted)
	return c.fail(err)
}

func (c *DatalogChain) rebuild(base *dllite.ABox) error {
	state, err := datalog.NewState(c.prog.Rules, aboxFacts(base), c.lim)
	if err != nil {
		return err
	}
	c.state = state
	return nil
}

// Answer advances to the newest epoch and evaluates the program's
// residual UCQ over the maintained fixpoint, returning distinct sorted
// tuples and the epoch they are exact for.
func (c *DatalogChain) Answer() ([]datalog.Tuple, uint64, error) {
	c.m.gate.mu.Lock()
	defer c.m.gate.mu.Unlock()
	if err := c.m.use(&c.chainState); err != nil {
		return nil, c.m.epoch, err
	}
	out, err := datalog.AnswerMaintained(c.prog, c.state.DB())
	return out, c.m.epoch, err
}

// ---------------------------------------------------------------------------
// Chase chain

// ChaseChain maintains a bounded restricted-chase materialization
// (saturate.Maintainer) across epochs. One chain serves every query
// whose required depth (q.Size()+1) fits under its construction depth.
type ChaseChain struct {
	chainState
	m     *Manager
	t     *dllite.TBox
	depth int
	lim   saturate.Limits
	mnt   *saturate.Maintainer
}

// RegisterChase builds a maintained chase of the given depth over the
// store's current contents.
func (m *Manager) RegisterChase(t *dllite.TBox, depth int, lim saturate.Limits) (*ChaseChain, error) {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	c := &ChaseChain{m: m, t: t, depth: depth, lim: lim}
	c.self = c
	if err := m.register(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Depth reports the chain's chase depth bound.
func (c *ChaseChain) Depth() int { return c.depth }

func (c *ChaseChain) apply(ins, del *dllite.ABox, m *Manager) error {
	if c.broken {
		return nil
	}
	return c.fail(c.mnt.Apply(ins, del, c.lim))
}

func (c *ChaseChain) rebuild(base *dllite.ABox) error {
	mnt, err := saturate.NewMaintainer(c.t, base, c.depth, c.lim)
	if err != nil {
		return err
	}
	c.mnt = mnt
	return nil
}

// Answer advances to the newest epoch and evaluates q over the
// maintained canonical model, filtering null-touching rows. The query's
// required depth must fit under the chain's bound or answers would be
// incomplete.
func (c *ChaseChain) Answer(q *cq.Query, evalLim daf.Limits) (*core.AnswerSet, *graph.Graph, uint64, error) {
	c.m.gate.mu.Lock()
	defer c.m.gate.mu.Unlock()
	if q.Size()+1 > c.depth {
		return nil, nil, c.m.epoch,
			fmt.Errorf("inc: query needs chase depth %d but chain was built at %d", q.Size()+1, c.depth)
	}
	if err := c.m.use(&c.chainState); err != nil {
		return nil, nil, c.m.epoch, err
	}
	res, g, err := c.mnt.Answer(q, evalLim)
	return res, g, c.m.epoch, err
}

// ---------------------------------------------------------------------------
// Consistency chain

// ConsistencyChain maintains the negative-inclusion violation index
// (saturate.ConsistencyState) across epochs; each batch rechecks only
// the individuals it touched.
type ConsistencyChain struct {
	chainState
	m   *Manager
	t   *dllite.TBox
	lim saturate.Limits
	cs  *saturate.ConsistencyState
}

// RegisterConsistency builds a maintained violation index over the
// store's current contents.
func (m *Manager) RegisterConsistency(t *dllite.TBox, lim saturate.Limits) (*ConsistencyChain, error) {
	m.gate.mu.Lock()
	defer m.gate.mu.Unlock()
	c := &ConsistencyChain{m: m, t: t, lim: lim}
	c.self = c
	if err := m.register(c); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *ConsistencyChain) apply(ins, del *dllite.ABox, m *Manager) error {
	if c.broken {
		return nil
	}
	return c.fail(c.cs.Apply(ins, del, c.lim))
}

func (c *ConsistencyChain) rebuild(base *dllite.ABox) error {
	cs, err := saturate.NewConsistencyState(c.t, base, c.lim)
	if err != nil {
		return err
	}
	c.cs = cs
	return nil
}

// Check advances to the newest epoch and reports the maintained verdict
// and violation list, plus the epoch they are exact for.
func (c *ConsistencyChain) Check() (bool, []saturate.Violation, uint64, error) {
	c.m.gate.mu.Lock()
	defer c.m.gate.mu.Unlock()
	if err := c.m.use(&c.chainState); err != nil {
		return false, nil, c.m.epoch, err
	}
	return c.cs.Consistent(), c.cs.Violations(), c.m.epoch, nil
}
