package inc

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ogpa/internal/cq"
	"ogpa/internal/daf"
	"ogpa/internal/datalog"
	"ogpa/internal/delta"
	"ogpa/internal/dllite"
	"ogpa/internal/perfectref"
	"ogpa/internal/saturate"
	"ogpa/internal/testkb"
)

// ntConcept / ntRole render one assertion as an N-Triples line (bare
// names; the 'a' shorthand only binds in predicate position, so
// individuals named "a" are safe as subjects).
func ntConcept(c dllite.ConceptAssertion) string {
	return fmt.Sprintf("%s a %s .", c.Ind, c.Concept)
}

func ntRole(r dllite.RoleAssertion) string {
	return fmt.Sprintf("%s %s %s .", r.Sub, r.Role, r.Obj)
}

// liveStore builds a delta store whose base graph holds abox.
func liveStore(abox *dllite.ABox) *delta.Store {
	return delta.NewStore(abox.Graph(nil), delta.Config{CompactThreshold: -1})
}

// oracleABox reconstructs the ABox at the store's current epoch — the
// exact view ogpa.KB's cold pipelines evaluate against.
func oracleABox(s *delta.Store) *dllite.ABox {
	return dllite.ABoxFromGraph(s.Snapshot().Graph())
}

// randTripleBatch draws one insertion or deletion body over the testkb
// signature, biased like the package-level sweeps: every third batch is
// deletion-heavy.
func randTripleBatch(rng *rand.Rand, cur *dllite.ABox, heavy bool) (body string, del bool) {
	var lines []string
	if heavy && (len(cur.Concepts) > 0 || len(cur.Roles) > 0) {
		for i := 0; i < 3+rng.Intn(6); i++ {
			if n := len(cur.Concepts); n > 0 && (rng.Intn(2) == 0 || len(cur.Roles) == 0) {
				lines = append(lines, ntConcept(cur.Concepts[rng.Intn(n)]))
			} else if n := len(cur.Roles); n > 0 {
				lines = append(lines, ntRole(cur.Roles[rng.Intn(n)]))
			}
		}
		return strings.Join(lines, "\n"), true
	}
	add := testkb.RandomABox(rng)
	n := 1 + rng.Intn(4)
	for i := 0; i < n && i < len(add.Concepts); i++ {
		lines = append(lines, ntConcept(add.Concepts[i]))
	}
	for i := 0; i < n && i < len(add.Roles); i++ {
		lines = append(lines, ntRole(add.Roles[i]))
	}
	return strings.Join(lines, "\n"), false
}

// TestManagerChainsMatchOracle is the manager-level slice of the
// 100-seed incremental-vs-recompute sweep: datalog, chase and
// consistency chains riding one watcher must agree byte-for-byte with
// from-scratch evaluation over the store's reconstructed ABox after
// every committed batch, including deletion-heavy ones.
func TestManagerChainsMatchOracle(t *testing.T) {
	for seed := 0; seed < 100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			tb, abox, q := testkb.RandomKB(rng)

			prog, err := datalog.Rewrite(q, tb, perfectref.Limits{})
			if err != nil {
				t.Fatalf("Rewrite: %v", err)
			}

			s := liveStore(abox)
			defer s.Close()
			m := NewManager(s, nil)
			defer m.Close()

			dc, err := m.RegisterDatalog(prog, datalog.Limits{})
			if err != nil {
				t.Fatalf("RegisterDatalog: %v", err)
			}
			cc, err := m.RegisterChase(tb, q.Size()+1, saturate.Limits{})
			if err != nil {
				t.Fatalf("RegisterChase: %v", err)
			}
			xc, err := m.RegisterConsistency(tb, saturate.Limits{})
			if err != nil {
				t.Fatalf("RegisterConsistency: %v", err)
			}

			check := func(step string) {
				t.Helper()
				cur := oracleABox(s)

				got, epoch, err := dc.Answer()
				if err != nil {
					t.Fatalf("%s: datalog chain: %v", step, err)
				}
				if epoch != s.Epoch() {
					t.Fatalf("%s: datalog answered at epoch %d, store at %d", step, epoch, s.Epoch())
				}
				want, err := datalog.Answer(prog, datalog.LoadABox(cur), datalog.Limits{})
				if err != nil {
					t.Fatalf("%s: datalog oracle: %v", step, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s: datalog\nmaintained: %v\noracle:     %v", step, got, want)
				}

				res, g, _, err := cc.Answer(q, daf.Limits{})
				if err != nil {
					t.Fatalf("%s: chase chain: %v", step, err)
				}
				ores, og, _, err := saturate.AnswerCQ(tb, cur, q, saturate.Limits{}, daf.Limits{})
				if err != nil {
					t.Fatalf("%s: chase oracle: %v", step, err)
				}
				gs, ws := strings.Join(res.Names(g), "\n"), strings.Join(ores.Names(og), "\n")
				if gs != ws {
					t.Fatalf("%s: chase %s\nmaintained:\n%s\noracle:\n%s", step, q, gs, ws)
				}

				ok, _, _, err := xc.Check()
				if err != nil {
					t.Fatalf("%s: consistency chain: %v", step, err)
				}
				ovs, err := saturate.CheckConsistency(tb, cur, saturate.Limits{})
				if err != nil {
					t.Fatalf("%s: consistency oracle: %v", step, err)
				}
				if ok != (len(ovs) == 0) {
					t.Fatalf("%s: consistency maintained=%v oracle violations=%v", step, ok, ovs)
				}
			}
			check("initial")

			for bi := 0; bi < 6; bi++ {
				heavy := bi%3 == 2
				body, del := randTripleBatch(rng, oracleABox(s), heavy)
				if body == "" {
					continue
				}
				var err error
				if del {
					_, err = s.DeleteTriples(strings.NewReader(body))
				} else {
					_, err = s.InsertTriples(strings.NewReader(body))
				}
				if err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
				check(fmt.Sprintf("batch %d (del=%v)", bi, del))
			}

			st := m.Stats()
			if st.Epoch != s.Epoch() || st.Chains != 3 {
				t.Fatalf("stats = %+v, store epoch %d", st, s.Epoch())
			}
		})
	}
}

// TestManagerLateRegistration: a chain registered after batches have
// committed must initialize from the advanced mirror, not the
// registration-time base graph.
func TestManagerLateRegistration(t *testing.T) {
	abox := &dllite.ABox{}
	abox.AddConcept("A", "x1")
	tb := dllite.NewTBox([]dllite.ConceptInclusion{
		{Sub: dllite.Atomic("A"), Sup: dllite.Atomic("B")},
	}, nil)

	s := liveStore(abox)
	defer s.Close()
	m := NewManager(s, nil)
	defer m.Close()

	if _, err := s.InsertTriples(strings.NewReader("x2 a A .")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteTriples(strings.NewReader("x1 a A .")); err != nil {
		t.Fatal(err)
	}

	cc, err := m.RegisterChase(tb, 3, saturate.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("q(x) :- B(x)")
	res, g, epoch, err := cc.Answer(q, daf.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != s.Epoch() {
		t.Fatalf("answered at epoch %d, store at %d", epoch, s.Epoch())
	}
	if got := strings.Join(res.Names(g), ";"); got != "x2" {
		t.Fatalf("late-registered chain answers = %q, want x2", got)
	}
}

// TestManagerErrorIsolationAndRebuild: a chain whose apply blows its
// limit breaks alone — its sibling keeps answering — and recovers by
// rebuilding from the mirror once evaluation is possible again.
func TestManagerErrorIsolationAndRebuild(t *testing.T) {
	tb := dllite.NewTBox([]dllite.ConceptInclusion{
		{Sub: dllite.Atomic("A"), Sup: dllite.Atomic("B")},
	}, nil)
	abox := &dllite.ABox{}
	abox.AddConcept("A", "x0")

	q := cq.MustParse("q(x) :- B(x)")
	prog, err := datalog.Rewrite(q, tb, perfectref.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	s := liveStore(abox)
	defer s.Close()
	m := NewManager(s, nil)
	defer m.Close()

	// tight enough to break once the store holds ~10 individuals (each
	// A(x) derives B(x), c·A(x), c·B(x) under the rewriting).
	tight, err := m.RegisterDatalog(prog, datalog.Limits{MaxFacts: 16})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := m.RegisterDatalog(prog, datalog.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	var lines []string
	for i := 1; i <= 10; i++ {
		lines = append(lines, fmt.Sprintf("x%d a A .", i))
	}
	if _, err := s.InsertTriples(strings.NewReader(strings.Join(lines, "\n"))); err != nil {
		t.Fatal(err)
	}

	if _, _, err := tight.Answer(); err == nil {
		t.Fatal("tight chain answered past its MaxFacts limit")
	}
	out, _, err := loose.Answer()
	if err != nil {
		t.Fatalf("sibling chain broken by tight chain's failure: %v", err)
	}
	if len(out) != 11 {
		t.Fatalf("sibling answers = %d rows, want 11", len(out))
	}

	// Shrink the store below the limit: the broken chain rebuilds from
	// the mirror and recovers.
	if _, err := s.DeleteTriples(strings.NewReader(strings.Join(lines, "\n"))); err != nil {
		t.Fatal(err)
	}
	out, _, err = tight.Answer()
	if err != nil {
		t.Fatalf("tight chain did not recover after shrink: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("recovered answers = %v, want [x0]", out)
	}
	if st := m.Stats(); st.Rebuilds == 0 {
		t.Fatalf("stats = %+v, want a recorded rebuild", st)
	}
}

// TestManagerConcurrent hammers one manager with concurrent writers and
// readers; run under -race. Every answer must be internally consistent
// with the epoch it reports (monotone, never past the store).
func TestManagerConcurrent(t *testing.T) {
	tb := dllite.NewTBox([]dllite.ConceptInclusion{
		{Sub: dllite.Atomic("A"), Sup: dllite.Atomic("B")},
	}, nil)
	abox := &dllite.ABox{}
	abox.AddConcept("A", "w0_0")

	q := cq.MustParse("q(x) :- B(x)")
	prog, err := datalog.Rewrite(q, tb, perfectref.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	s := liveStore(abox)
	defer s.Close()
	m := NewManager(s, nil)
	defer m.Close()
	dc, err := m.RegisterDatalog(prog, datalog.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 20
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				line := fmt.Sprintf("w%d_%d a A .", i, j)
				if _, err := s.InsertTriples(strings.NewReader(line)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	var last uint64
	for k := 0; k < 50; k++ {
		out, epoch, err := dc.Answer()
		if err != nil {
			t.Fatalf("Answer %d: %v", k, err)
		}
		if epoch < last || epoch > s.Epoch() {
			t.Fatalf("epoch went %d after %d (store %d)", epoch, last, s.Epoch())
		}
		last = epoch
		if len(out) == 0 {
			t.Fatal("lost the base answer")
		}
	}
	wg.Wait()

	out, epoch, err := dc.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != s.Epoch() || len(out) != writers*perWriter {
		t.Fatalf("final: %d rows at epoch %d, want %d rows at %d",
			len(out), epoch, writers*perWriter, s.Epoch())
	}
}
