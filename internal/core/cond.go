// Package core implements ontological graph patterns (OGPs), the paper's
// primary contribution (Section III): graph patterns whose vertices and
// edges carry matching conditions and whose vertices may carry omission
// conditions, interpreted under partial-mapping homomorphism semantics.
//
// The condition language is the τ grammar of the paper:
//
//	τ ::= x.A ⊕ c | x.A ⊕ y.B | l(x) | l(x,y) | τ ∧ τ | τ ∨ τ
//
// extended with the edge-existence atoms l(x,_) and l(_,x), which the
// rewriting rules r7–r10 of Table II introduce (they assert that a vertex
// has some incident edge with a given label, with the far endpoint
// unconstrained).
package core

import (
	"fmt"

	"ogpa/internal/graph"
)

// CmpOp is one of the six comparison operators of the τ grammar.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	default:
		return ">="
	}
}

// Holds applies the operator to a comparison result.
func (op CmpOp) Holds(cmp int, comparable bool) bool {
	if !comparable {
		return false
	}
	switch op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// Cond is a condition tree. Vertex references are pattern-vertex indexes.
type Cond interface {
	isCond()
	String() string
}

// True is the trivially satisfied condition.
type True struct{}

// LabelIs is l(x): vertex x carries label Label.
type LabelIs struct {
	X     int
	Label string
}

// EdgeIs is l(x,y): an edge labeled Label from x to y exists in G.
type EdgeIs struct {
	X, Y  int
	Label string
}

// EdgeExists is l(x,_) (Out == true) or l(_,x) (Out == false): vertex x has
// an incident edge labeled Label with an unconstrained far endpoint.
type EdgeExists struct {
	X     int
	Label string
	Out   bool
}

// AttrCmpConst is x.A ⊕ c.
type AttrCmpConst struct {
	X    int
	Attr string
	Op   CmpOp
	C    graph.Value
}

// AttrCmpAttr is x.A ⊕ y.B.
type AttrCmpAttr struct {
	X     int
	AttrX string
	Op    CmpOp
	Y     int
	AttrY string
}

// SameAs is x = y: both vertices are matched and coincide. It extends the
// paper's τ grammar (which already has the cross-vertex form x.A ⊕ y.B);
// GenOGP uses it to gate omission justifications produced by reductions
// that unify a *bound* variable with a kept one — the merged vertex must
// then coincide with the kept vertex for the justification to apply.
type SameAs struct {
	X, Y int
}

// IsOmitted is x = ⊥: vertex x is omitted by the mapping. Like SameAs it
// extends the paper's τ grammar; GenOGP uses it to degrade a SameAs gate
// whose referenced vertex is itself omittable — the equality constraint
// only applies while the referent is present (its own omission condition
// governs otherwise), so the gate compiles to IsOmitted(z) ∨ SameAs(z, v)
// instead of an unsatisfiable bare SameAs.
type IsOmitted struct {
	X int
}

// And is τ1 ∧ τ2.
type And struct{ L, R Cond }

// Or is τ1 ∨ τ2.
type Or struct{ L, R Cond }

func (True) isCond()         {}
func (LabelIs) isCond()      {}
func (EdgeIs) isCond()       {}
func (EdgeExists) isCond()   {}
func (AttrCmpConst) isCond() {}
func (AttrCmpAttr) isCond()  {}
func (SameAs) isCond()       {}
func (IsOmitted) isCond()    {}
func (And) isCond()          {}
func (Or) isCond()           {}

func (True) String() string { return "true" }

func (c LabelIs) String() string { return fmt.Sprintf("%s($%d)", c.Label, c.X) }

func (c EdgeIs) String() string { return fmt.Sprintf("%s($%d,$%d)", c.Label, c.X, c.Y) }

func (c EdgeExists) String() string {
	if c.Out {
		return fmt.Sprintf("%s($%d,_)", c.Label, c.X)
	}
	return fmt.Sprintf("%s(_,$%d)", c.Label, c.X)
}

func (c AttrCmpConst) String() string {
	return fmt.Sprintf("$%d.%s %s %s", c.X, c.Attr, c.Op, c.C.String2())
}

func (c AttrCmpAttr) String() string {
	return fmt.Sprintf("$%d.%s %s $%d.%s", c.X, c.AttrX, c.Op, c.Y, c.AttrY)
}

func (c SameAs) String() string { return fmt.Sprintf("$%d=$%d", c.X, c.Y) }

func (c IsOmitted) String() string { return fmt.Sprintf("$%d=⊥", c.X) }

func (c And) String() string { return "(" + c.L.String() + " & " + c.R.String() + ")" }
func (c Or) String() string  { return "(" + c.L.String() + " | " + c.R.String() + ")" }

// AndAll folds conditions with ∧, eliding nils and Trues. Returns nil when
// nothing remains.
func AndAll(cs ...Cond) Cond {
	var acc Cond
	for _, c := range cs {
		if c == nil {
			continue
		}
		if _, ok := c.(True); ok {
			continue
		}
		if acc == nil {
			acc = c
		} else {
			acc = And{acc, c}
		}
	}
	return acc
}

// OrAll folds conditions with ∨, eliding nils. Returns nil when nothing
// remains; a single True short-circuits to True.
func OrAll(cs ...Cond) Cond {
	var acc Cond
	for _, c := range cs {
		if c == nil {
			continue
		}
		if _, ok := c.(True); ok {
			return True{}
		}
		if acc == nil {
			acc = c
		} else {
			acc = Or{acc, c}
		}
	}
	return acc
}

// Vars returns the set of pattern vertices referenced by c.
func Vars(c Cond) map[int]bool {
	out := make(map[int]bool)
	collectVars(c, out)
	return out
}

func collectVars(c Cond, out map[int]bool) {
	switch t := c.(type) {
	case nil, True:
	case LabelIs:
		out[t.X] = true
	case EdgeIs:
		out[t.X] = true
		out[t.Y] = true
	case EdgeExists:
		out[t.X] = true
	case AttrCmpConst:
		out[t.X] = true
	case AttrCmpAttr:
		out[t.X] = true
		out[t.Y] = true
	case SameAs:
		out[t.X] = true
		out[t.Y] = true
	case IsOmitted:
		out[t.X] = true
	case And:
		collectVars(t.L, out)
		collectVars(t.R, out)
	case Or:
		collectVars(t.L, out)
		collectVars(t.R, out)
	default:
		panic(fmt.Sprintf("core: unknown condition %T", c))
	}
}

// DNF flattens a condition into disjunctive normal form: a slice of
// conjunctive clauses, each a slice of atomic conditions. A nil condition
// yields nil (interpreted as "true" by convention of the caller).
func DNF(c Cond) [][]Cond {
	if c == nil {
		return nil
	}
	switch t := c.(type) {
	case True:
		return [][]Cond{{}}
	case And:
		l, r := DNF(t.L), DNF(t.R)
		out := make([][]Cond, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				clause := make([]Cond, 0, len(a)+len(b))
				clause = append(clause, a...)
				clause = append(clause, b...)
				out = append(out, clause)
			}
		}
		return out
	case Or:
		return append(DNF(t.L), DNF(t.R)...)
	default:
		return [][]Cond{{t}}
	}
}

// CondSize counts the atomic conditions in c, the paper's #COND metric for
// rewriting sizes.
func CondSize(c Cond) int {
	switch t := c.(type) {
	case nil, True:
		return 0
	case And:
		return CondSize(t.L) + CondSize(t.R)
	case Or:
		return CondSize(t.L) + CondSize(t.R)
	default:
		return 1
	}
}
