package core

import (
	"fmt"
	"strings"

	"ogpa/internal/cq"
)

// Wildcard is the label that matches any label.
const Wildcard = "*"

// Vertex is a pattern vertex u with label L_Q(u), matching condition
// C^l(u), omission condition C^o(u) (nil ⇒ u can never be omitted) and a
// distinguished flag (u ∈ x̄).
type Vertex struct {
	Name          string
	Label         string
	Match         Cond // nil ⇒ true
	Omit          Cond // nil ⇒ C^o(u) = ∅ (u must be matched)
	Distinguished bool
}

// Edge is a pattern edge (From, Label, To) with matching condition C^l(e).
//
// Structural semantics: when Match is nil, a match requires a data edge
// h(From) → h(To) whose label ≍ Label. When Match is non-nil, the condition
// *replaces* the structural test: every disjunct of a GenOGP-produced edge
// condition is itself an edge atom over the endpoints, and inverse-role
// alternatives (Table II rule r4) are only expressible this way.
type Edge struct {
	From, To int
	Label    string
	Match    Cond
}

// Pattern is an ontological graph pattern Q[x̄].
type Pattern struct {
	Vertices []Vertex
	Edges    []Edge
}

// NumVertices reports |V_Q|.
func (p *Pattern) NumVertices() int { return len(p.Vertices) }

// Distinguished returns the indexes of distinguished vertices in order.
func (p *Pattern) Distinguished() []int {
	var out []int
	for i, v := range p.Vertices {
		if v.Distinguished {
			out = append(out, i)
		}
	}
	return out
}

// VertexByName resolves a vertex index by variable name, or -1.
func (p *Pattern) VertexByName(name string) int {
	for i, v := range p.Vertices {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// AdjacentEdges returns the indexes of edges incident to vertex u.
func (p *Pattern) AdjacentEdges(u int) []int {
	var out []int
	for i, e := range p.Edges {
		if e.From == u || e.To == u {
			out = append(out, i)
		}
	}
	return out
}

// CondSize is the paper's #COND metric: the total number of atomic
// conditions attached to the pattern.
func (p *Pattern) CondSize() int {
	n := 0
	for _, v := range p.Vertices {
		n += CondSize(v.Match) + CondSize(v.Omit)
	}
	for _, e := range p.Edges {
		n += CondSize(e.Match)
	}
	return n
}

// Validate checks structural sanity: edge endpoints and condition vertex
// references in range, no self-referential omission, wildcard use.
func (p *Pattern) Validate() error {
	n := len(p.Vertices)
	checkCond := func(c Cond, what string) error {
		for v := range Vars(c) {
			if v < 0 || v >= n {
				return fmt.Errorf("core: %s references vertex %d, pattern has %d", what, v, n)
			}
		}
		return nil
	}
	names := make(map[string]bool, n)
	for i, v := range p.Vertices {
		if v.Name != "" {
			if names[v.Name] {
				return fmt.Errorf("core: duplicate vertex name %q", v.Name)
			}
			names[v.Name] = true
		}
		if v.Label == "" {
			return fmt.Errorf("core: vertex %d has empty label (use %q for wildcard)", i, Wildcard)
		}
		if err := checkCond(v.Match, fmt.Sprintf("C^l(%d)", i)); err != nil {
			return err
		}
		if err := checkCond(v.Omit, fmt.Sprintf("C^o(%d)", i)); err != nil {
			return err
		}
	}
	for i, e := range p.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("core: edge %d endpoints (%d,%d) out of range", i, e.From, e.To)
		}
		if e.Label == "" {
			return fmt.Errorf("core: edge %d has empty label", i)
		}
		if err := checkCond(e.Match, fmt.Sprintf("C^l(edge %d)", i)); err != nil {
			return err
		}
	}
	return nil
}

// Connected reports whether the pattern is connected, counting both
// structural edges and condition dependencies.
func (p *Pattern) Connected() bool {
	n := len(p.Vertices)
	if n <= 1 {
		return true
	}
	adj := make([][]int, n)
	link := func(a, b int) {
		if a != b {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	for _, e := range p.Edges {
		link(e.From, e.To)
	}
	for i, v := range p.Vertices {
		for w := range Vars(v.Match) {
			link(i, w)
		}
		for w := range Vars(v.Omit) {
			link(i, w)
		}
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if !seen[w] {
				seen[w] = true
				cnt++
				stack = append(stack, w)
			}
		}
	}
	return cnt == n
}

func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("OGP[")
	first := true
	for _, v := range p.Vertices {
		if v.Distinguished {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(v.Name)
		}
	}
	b.WriteString("]\n")
	for i, v := range p.Vertices {
		fmt.Fprintf(&b, "  $%d %s : %s", i, v.Name, v.Label)
		if v.Match != nil {
			fmt.Fprintf(&b, "  C^l=%s", v.Match)
		}
		if v.Omit != nil {
			fmt.Fprintf(&b, "  C^o=%s", v.Omit)
		}
		b.WriteByte('\n')
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "  $%d -%s-> $%d", e.From, e.Label, e.To)
		if e.Match != nil {
			fmt.Fprintf(&b, "  C^l=%s", e.Match)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FromCQ builds the initial OGP of a conjunctive query per the paper's
// "Queries to graphs" construction: one vertex per variable; each concept
// atom A(x) contributes the label A and the matching condition A(x); each
// role atom P(x,y) contributes an edge labeled P with matching condition
// P(x,y); omission conditions start empty. When a variable carries several
// concept atoms, the first becomes the vertex label and the rest become
// extra conjuncts of the matching condition.
func FromCQ(q *cq.Query) *Pattern {
	p := &Pattern{}
	index := make(map[string]int)
	vertex := func(name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		i := len(p.Vertices)
		index[name] = i
		p.Vertices = append(p.Vertices, Vertex{
			Name:          name,
			Label:         Wildcard,
			Distinguished: q.IsDistinguished(name),
		})
		return i
	}
	for _, v := range q.Vars() {
		vertex(v)
	}
	for _, a := range q.Atoms {
		if a.IsRole {
			x, y := vertex(a.X), vertex(a.Y)
			p.Edges = append(p.Edges, Edge{
				From:  x,
				To:    y,
				Label: a.Pred,
				Match: EdgeIs{X: x, Y: y, Label: a.Pred},
			})
			continue
		}
		x := vertex(a.X)
		v := &p.Vertices[x]
		if v.Label == Wildcard {
			v.Label = a.Pred
		}
		v.Match = AndAll(v.Match, LabelIs{X: x, Label: a.Pred})
	}
	return p
}
