package core

import (
	"sort"
	"strings"

	"ogpa/internal/graph"
)

// Omitted is the ⊥ value of a partial mapping: the pattern vertex has no
// match in the graph.
const Omitted = graph.NoVID

// Mapping is a (partial) mapping h from pattern vertices to graph vertices;
// entry Omitted encodes h(x) = ⊥.
type Mapping []graph.VID

// Eval evaluates condition c under mapping m in graph g, following the
// satisfaction rules of Section III: any atom referencing an omitted vertex
// is false; ∧ and ∨ are standard.
func Eval(c Cond, m Mapping, g *graph.Graph) bool {
	switch t := c.(type) {
	case nil:
		return true
	case True:
		return true
	case LabelIs:
		v := m[t.X]
		if v == Omitted {
			return false
		}
		l := g.Symbols.Lookup(t.Label)
		return l != 0 && g.HasLabel(v, l)
	case EdgeIs:
		x, y := m[t.X], m[t.Y]
		if x == Omitted || y == Omitted {
			return false
		}
		if t.Label == Wildcard {
			return g.HasAnyEdge(x, y)
		}
		l := g.Symbols.Lookup(t.Label)
		return l != 0 && g.HasEdge(x, l, y)
	case EdgeExists:
		x := m[t.X]
		if x == Omitted {
			return false
		}
		if t.Label == Wildcard {
			if t.Out {
				return g.OutDegree(x) > 0
			}
			return g.InDegree(x) > 0
		}
		l := g.Symbols.Lookup(t.Label)
		if l == 0 {
			return false
		}
		if t.Out {
			return g.HasOutLabel(x, l)
		}
		return g.HasInLabel(x, l)
	case AttrCmpConst:
		x := m[t.X]
		if x == Omitted {
			return false
		}
		a := g.Symbols.Lookup(t.Attr)
		if a == 0 {
			return false
		}
		val, ok := g.Attribute(x, a)
		if !ok {
			return false
		}
		cmp, comparable := val.Compare(t.C)
		return t.Op.Holds(cmp, comparable)
	case AttrCmpAttr:
		x, y := m[t.X], m[t.Y]
		if x == Omitted || y == Omitted {
			return false
		}
		ax, ay := g.Symbols.Lookup(t.AttrX), g.Symbols.Lookup(t.AttrY)
		if ax == 0 || ay == 0 {
			return false
		}
		vx, okx := g.Attribute(x, ax)
		vy, oky := g.Attribute(y, ay)
		if !okx || !oky {
			return false
		}
		cmp, comparable := vx.Compare(vy)
		return t.Op.Holds(cmp, comparable)
	case SameAs:
		x, y := m[t.X], m[t.Y]
		return x != Omitted && y != Omitted && x == y
	case IsOmitted:
		// The deliberate exception to "atoms referencing an omitted vertex
		// are false": this atom asserts the omission itself.
		return m[t.X] == Omitted
	case And:
		return Eval(t.L, m, g) && Eval(t.R, m, g)
	case Or:
		return Eval(t.L, m, g) || Eval(t.R, m, g)
	default:
		panic("core: unknown condition type")
	}
}

// labelMatches implements l ≍ l': exact match or pattern wildcard.
func labelMatches(patternLabel string, v graph.VID, g *graph.Graph) bool {
	if patternLabel == Wildcard {
		return true
	}
	l := g.Symbols.Lookup(patternLabel)
	return l != 0 && g.HasLabel(v, l)
}

// IsMatch checks whether the total assignment m (every entry a vertex or
// Omitted) is a match of p in g per the semantics of Section III.
func IsMatch(p *Pattern, m Mapping, g *graph.Graph) bool {
	if len(m) != len(p.Vertices) {
		return false
	}
	for i, pv := range p.Vertices {
		if m[i] != Omitted {
			if !labelMatches(pv.Label, m[i], g) {
				return false
			}
			if !Eval(pv.Match, m, g) {
				return false
			}
		} else {
			if pv.Omit == nil || !Eval(pv.Omit, m, g) {
				return false
			}
		}
	}
	for _, e := range p.Edges {
		if m[e.From] == Omitted || m[e.To] == Omitted {
			// The edge is excused: its omitted endpoint was already
			// justified by the vertex loop above.
			continue
		}
		if !edgeSatisfied(e, m, g) {
			return false
		}
	}
	return true
}

// edgeSatisfied checks one structural edge: with a condition the condition
// governs (supporting inverse-role alternatives); without, a forward data
// edge with a compatible label must exist.
func edgeSatisfied(e Edge, m Mapping, g *graph.Graph) bool {
	if e.Match != nil {
		return Eval(e.Match, m, g)
	}
	x, y := m[e.From], m[e.To]
	if e.Label == Wildcard {
		return g.HasAnyEdge(x, y)
	}
	l := g.Symbols.Lookup(e.Label)
	return l != 0 && g.HasEdge(x, l, y)
}

// Answer is a projection of a match to the distinguished vertices, aligned
// with Pattern.Distinguished(); Omitted entries are possible when a
// distinguished vertex was omitted.
type Answer []graph.VID

// Key encodes an answer for deduplication.
func (a Answer) Key() string {
	var b strings.Builder
	for _, v := range a {
		if v == Omitted {
			b.WriteString("⊥,")
			continue
		}
		b.WriteString(itoa(uint64(v)))
		b.WriteByte(',')
	}
	return b.String()
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// AnswerSet accumulates deduplicated answers.
type AnswerSet struct {
	seen map[string]bool
	list []Answer
}

// NewAnswerSet returns an empty answer set.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{seen: make(map[string]bool)}
}

// Add inserts a (copy of) answer a, reporting whether it was new.
func (s *AnswerSet) Add(a Answer) bool {
	k := a.Key()
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.list = append(s.list, append(Answer(nil), a...))
	return true
}

// Len reports the number of distinct answers.
func (s *AnswerSet) Len() int { return len(s.list) }

// Answers returns the deduplicated answers in insertion order.
func (s *AnswerSet) Answers() []Answer { return s.list }

// Names renders answers as sorted rows of vertex names ("⊥" for omitted),
// for tests and CLI output.
func (s *AnswerSet) Names(g *graph.Graph) []string {
	rows := make([]string, 0, len(s.list))
	for _, a := range s.list {
		parts := make([]string, len(a))
		for i, v := range a {
			if v == Omitted {
				parts[i] = "⊥"
			} else {
				parts[i] = g.Name(v)
			}
		}
		rows = append(rows, strings.Join(parts, ","))
	}
	sort.Strings(rows)
	return rows
}

// Names2D renders answers as sorted rows of vertex names ("⊥" for
// omitted), one slice per answer.
func (s *AnswerSet) Names2D(g *graph.Graph) [][]string {
	rows := make([][]string, 0, len(s.list))
	for _, a := range s.list {
		parts := make([]string, len(a))
		for i, v := range a {
			if v == Omitted {
				parts[i] = "⊥"
			} else {
				parts[i] = g.Name(v)
			}
		}
		rows = append(rows, parts)
	}
	sort.Slice(rows, func(i, j int) bool {
		return strings.Join(rows[i], ",") < strings.Join(rows[j], ",")
	})
	return rows
}

// Project extracts the answer tuple of mapping m for pattern p.
func Project(p *Pattern, m Mapping) Answer {
	dist := p.Distinguished()
	out := make(Answer, len(dist))
	for i, d := range dist {
		out[i] = m[d]
	}
	return out
}

// EnumerateNaive computes Q(G) by brute force: it tries every assignment of
// pattern vertices to graph vertices (plus ⊥ for omittable vertices) and
// keeps assignments satisfying IsMatch. Exponential; intended as the
// reference oracle in tests on small graphs.
func EnumerateNaive(p *Pattern, g *graph.Graph) *AnswerSet {
	out := NewAnswerSet()
	n := len(p.Vertices)
	m := make(Mapping, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if IsMatch(p, m, g) {
				out.Add(Project(p, m))
			}
			return
		}
		for v := 0; v < g.NumVertices(); v++ {
			m[i] = graph.VID(v)
			rec(i + 1)
		}
		if p.Vertices[i].Omit != nil {
			m[i] = Omitted
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
