package core

import (
	"strings"
	"testing"

	"ogpa/internal/cq"
	"ogpa/internal/graph"
)

// fig2Graph reconstructs the graph G of the paper's Figure 2 / Example 5:
// a Teacher y1, a Professor y2, Students y3/y4, an Article y5 and a Course
// y6, with teaches(y1,y3), teaches(y1,y4), takes(y3,y6), takes(y4,y6).
func fig2Graph() *graph.Graph {
	b := graph.NewBuilder(nil)
	b.AddLabel("y1", "Teacher")
	b.AddLabel("y2", "Professor")
	b.AddLabel("y3", "Student")
	b.AddLabel("y4", "Student")
	b.AddLabel("y5", "Article")
	b.AddLabel("y6", "Course")
	b.AddEdge("y1", "teaches", "y3")
	b.AddEdge("y1", "teaches", "y4")
	b.AddEdge("y3", "takes", "y6")
	b.AddEdge("y4", "takes", "y6")
	return b.Freeze()
}

// q5Prime builds the OGP Q5' of the paper's Example 4(3): it encodes both
// Q5 (professor/publishes/article/university) and Q6 (teacher/takes/course).
// Vertices: 0=x1, 1=x2, 2=x3, 3=x4.
func q5Prime() *Pattern {
	return &Pattern{
		Vertices: []Vertex{
			{Name: "x1", Label: Wildcard, Distinguished: true,
				Match: Or{LabelIs{0, "Professor"}, LabelIs{0, "Teacher"}}},
			{Name: "x2", Label: "Student", Distinguished: true},
			{Name: "x3", Label: Wildcard, Distinguished: true,
				Match: Or{
					And{LabelIs{2, "Article"}, LabelIs{0, "Professor"}},
					And{LabelIs{2, "Course"}, LabelIs{0, "Teacher"}},
				}},
			{Name: "x4", Label: "University", Distinguished: true,
				Omit: LabelIs{0, "Teacher"}},
		},
		Edges: []Edge{
			{From: 0, To: 1, Label: "teaches"},
			{From: 1, To: 2, Label: Wildcard,
				Match: Or{
					And{EdgeIs{1, 2, "publishes"}, LabelIs{0, "Professor"}},
					And{EdgeIs{1, 2, "takes"}, LabelIs{0, "Teacher"}},
				}},
			{From: 0, To: 3, Label: "worksFor"},
		},
	}
}

func TestQ5PrimeValidatesAndConnected(t *testing.T) {
	p := q5Prime()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Connected() {
		t.Fatal("Q5' should be connected")
	}
	if got := p.Distinguished(); len(got) != 4 {
		t.Fatalf("Distinguished = %v", got)
	}
	if p.VertexByName("x3") != 2 || p.VertexByName("nope") != -1 {
		t.Fatal("VertexByName wrong")
	}
	if got := p.AdjacentEdges(0); len(got) != 2 {
		t.Fatalf("AdjacentEdges(x1) = %v", got)
	}
	if p.CondSize() != 11 {
		t.Fatalf("CondSize = %d", p.CondSize())
	}
	if !strings.Contains(p.String(), "x1") {
		t.Fatal("String() should mention vertex names")
	}
}

// TestExample5Matches reproduces the paper's Example 5: Q5' has exactly the
// two matches h1 (x2→y3) and h2 (x2→y4), both with x1→y1, x3→y6, x4→⊥.
func TestExample5Matches(t *testing.T) {
	g := fig2Graph()
	res := EnumerateNaive(q5Prime(), g)
	got := res.Names(g)
	want := []string{"y1,y3,y6,⊥", "y1,y4,y6,⊥"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("matches = %v, want %v", got, want)
	}
}

func TestOmissionRequiresCondition(t *testing.T) {
	g := fig2Graph()
	p := q5Prime()
	// Drop the omission condition: x4 can no longer be omitted, and since G
	// has no University vertex there are no matches at all.
	p.Vertices[3].Omit = nil
	if res := EnumerateNaive(p, g); res.Len() != 0 {
		t.Fatalf("expected no matches, got %v", res.Names(g))
	}
}

func TestEvalAtoms(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("a", "A")
	b.AddLabel("c", "C")
	b.AddEdge("a", "p", "c")
	b.SetAttr("a", "age", graph.Int(30))
	b.SetAttr("c", "age", graph.Int(20))
	b.SetAttr("c", "name", graph.String("carol"))
	g := b.Freeze()
	va, vc := g.VertexByName("a"), g.VertexByName("c")
	m := Mapping{va, vc}

	cases := []struct {
		c    Cond
		want bool
	}{
		{True{}, true},
		{LabelIs{0, "A"}, true},
		{LabelIs{0, "B"}, false},
		{LabelIs{0, "NeverInterned"}, false},
		{EdgeIs{0, 1, "p"}, true},
		{EdgeIs{1, 0, "p"}, false},
		{EdgeIs{0, 1, "q"}, false},
		{EdgeExists{0, "p", true}, true},
		{EdgeExists{0, "p", false}, false},
		{EdgeExists{1, "p", false}, true},
		{AttrCmpConst{0, "age", Gt, graph.Int(25)}, true},
		{AttrCmpConst{0, "age", Lt, graph.Int(25)}, false},
		{AttrCmpConst{0, "missing", Eq, graph.Int(1)}, false},
		{AttrCmpConst{1, "name", Eq, graph.String("carol")}, true},
		{AttrCmpConst{1, "name", Ne, graph.String("carol")}, false},
		{AttrCmpConst{1, "name", Eq, graph.Int(3)}, false}, // incomparable
		{AttrCmpAttr{X: 0, AttrX: "age", Op: Gt, Y: 1, AttrY: "age"}, true},
		{AttrCmpAttr{X: 0, AttrX: "age", Op: Le, Y: 1, AttrY: "age"}, false},
		{AttrCmpAttr{X: 0, AttrX: "age", Op: Eq, Y: 1, AttrY: "name"}, false},
		{And{LabelIs{0, "A"}, LabelIs{1, "C"}}, true},
		{And{LabelIs{0, "A"}, LabelIs{1, "A"}}, false},
		{Or{LabelIs{0, "B"}, LabelIs{1, "C"}}, true},
		{Or{LabelIs{0, "B"}, LabelIs{1, "B"}}, false},
	}
	for i, c := range cases {
		if got := Eval(c.c, m, g); got != c.want {
			t.Errorf("case %d (%s): Eval = %v, want %v", i, c.c, got, c.want)
		}
	}

	// Atoms referencing an omitted vertex are false.
	mOmit := Mapping{va, Omitted}
	for _, c := range []Cond{
		LabelIs{1, "C"},
		EdgeIs{0, 1, "p"},
		EdgeExists{1, "p", false},
		AttrCmpConst{1, "age", Eq, graph.Int(20)},
		AttrCmpAttr{X: 0, AttrX: "age", Op: Gt, Y: 1, AttrY: "age"},
	} {
		if Eval(c, mOmit, g) {
			t.Errorf("%s should be false under omission", c)
		}
	}
}

func TestCmpOps(t *testing.T) {
	type tc struct {
		op   CmpOp
		cmp  int
		want bool
	}
	for _, c := range []tc{
		{Eq, 0, true}, {Eq, 1, false},
		{Ne, 1, true}, {Ne, 0, false},
		{Lt, -1, true}, {Lt, 0, false},
		{Le, 0, true}, {Le, 1, false},
		{Gt, 1, true}, {Gt, 0, false},
		{Ge, 0, true}, {Ge, -1, false},
	} {
		if got := c.op.Holds(c.cmp, true); got != c.want {
			t.Errorf("%s.Holds(%d) = %v", c.op, c.cmp, got)
		}
		if c.op.Holds(c.cmp, false) {
			t.Errorf("%s.Holds(incomparable) should be false", c.op)
		}
		if c.op.String() == "" {
			t.Error("empty operator string")
		}
	}
}

func TestCondCombinators(t *testing.T) {
	a := LabelIs{0, "A"}
	b := LabelIs{1, "B"}
	if AndAll() != nil || AndAll(nil, True{}) != nil {
		t.Fatal("AndAll of nothing should be nil")
	}
	if AndAll(a) != Cond(a) {
		t.Fatal("AndAll of one is itself")
	}
	if _, ok := AndAll(a, b).(And); !ok {
		t.Fatal("AndAll of two is And")
	}
	if OrAll() != nil {
		t.Fatal("OrAll of nothing should be nil")
	}
	if _, ok := OrAll(a, True{}).(True); !ok {
		t.Fatal("OrAll with True short-circuits")
	}
	if _, ok := OrAll(a, b).(Or); !ok {
		t.Fatal("OrAll of two is Or")
	}
}

func TestVarsAndCondSize(t *testing.T) {
	c := Or{
		And{LabelIs{2, "Article"}, LabelIs{0, "Professor"}},
		And{EdgeIs{1, 2, "takes"}, AttrCmpAttr{X: 3, AttrX: "a", Y: 4, AttrY: "b"}},
	}
	vars := Vars(c)
	for _, v := range []int{0, 1, 2, 3, 4} {
		if !vars[v] {
			t.Fatalf("Vars = %v, missing %d", vars, v)
		}
	}
	if CondSize(c) != 4 {
		t.Fatalf("CondSize = %d", CondSize(c))
	}
	if CondSize(nil) != 0 || CondSize(True{}) != 0 {
		t.Fatal("trivial conditions have size 0")
	}
}

func TestDNF(t *testing.T) {
	a, b, c, d := LabelIs{0, "a"}, LabelIs{0, "b"}, LabelIs{0, "c"}, LabelIs{0, "d"}
	// (a ∨ b) ∧ (c ∨ d) → 4 clauses of 2 atoms.
	clauses := DNF(And{Or{a, b}, Or{c, d}})
	if len(clauses) != 4 {
		t.Fatalf("DNF clauses = %d", len(clauses))
	}
	for _, cl := range clauses {
		if len(cl) != 2 {
			t.Fatalf("clause = %v", cl)
		}
	}
	if DNF(nil) != nil {
		t.Fatal("DNF(nil) should be nil")
	}
	if got := DNF(True{}); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("DNF(true) = %v", got)
	}
	if got := DNF(a); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("DNF(atom) = %v", got)
	}
}

func TestFromCQ(t *testing.T) {
	q := cq.MustParse(`q(x) :- Student(x), advisorOf(y1, x), takesCourse(x, z)`)
	p := FromCQ(q)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Vertices) != 3 || len(p.Edges) != 2 {
		t.Fatalf("pattern: %d vertices, %d edges", len(p.Vertices), len(p.Edges))
	}
	x := p.VertexByName("x")
	if !p.Vertices[x].Distinguished {
		t.Fatal("x should be distinguished")
	}
	if p.Vertices[x].Label != "Student" {
		t.Fatalf("label of x = %q", p.Vertices[x].Label)
	}
	if p.Vertices[p.VertexByName("y1")].Label != Wildcard {
		t.Fatal("y1 should be wildcard")
	}
	for _, e := range p.Edges {
		if e.Match == nil {
			t.Fatal("CQ-derived edges carry their atom as matching condition")
		}
	}
	// Multiple concept atoms on one variable: extra labels become conjuncts.
	q2 := cq.MustParse(`q(x) :- Student(x), Employee(x)`)
	p2 := FromCQ(q2)
	if CondSize(p2.Vertices[0].Match) != 2 {
		t.Fatalf("Match = %v", p2.Vertices[0].Match)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Pattern{
		{Vertices: []Vertex{{Name: "x", Label: ""}}},
		{Vertices: []Vertex{{Name: "x", Label: "*", Match: LabelIs{5, "A"}}}},
		{Vertices: []Vertex{{Name: "x", Label: "*", Omit: EdgeIs{0, 9, "p"}}}},
		{Vertices: []Vertex{{Name: "x", Label: "*"}}, Edges: []Edge{{From: 0, To: 3, Label: "p"}}},
		{Vertices: []Vertex{{Name: "x", Label: "*"}}, Edges: []Edge{{From: 0, To: 0, Label: ""}}},
		{Vertices: []Vertex{{Name: "x", Label: "*"}, {Name: "x", Label: "*"}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("pattern %d should fail validation", i)
		}
	}
}

func TestAnswerSet(t *testing.T) {
	s := NewAnswerSet()
	if !s.Add(Answer{1, 2}) || s.Add(Answer{1, 2}) {
		t.Fatal("dedup failed")
	}
	if !s.Add(Answer{1, Omitted}) {
		t.Fatal("omitted-entry answer should be distinct")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.Answers()) != 2 {
		t.Fatal("Answers length mismatch")
	}
	// Keys must distinguish (12) from (1,2).
	if (Answer{12}).Key() == (Answer{1, 2}).Key() {
		t.Fatal("ambiguous answer keys")
	}
}

func TestWildcardEdgeNoCondition(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddLabel("u", "A")
	b.AddLabel("v", "B")
	b.AddEdge("u", "p", "v")
	g := b.Freeze()
	p := &Pattern{
		Vertices: []Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "y", Label: "B", Distinguished: true},
		},
		Edges: []Edge{{From: 0, To: 1, Label: Wildcard}},
	}
	res := EnumerateNaive(p, g)
	if res.Len() != 1 {
		t.Fatalf("wildcard edge matches = %d", res.Len())
	}
	// Reversed pattern edge must not match.
	p.Edges[0] = Edge{From: 1, To: 0, Label: Wildcard}
	if res := EnumerateNaive(p, g); res.Len() != 0 {
		t.Fatalf("reversed wildcard edge matches = %d", res.Len())
	}
}

func TestHomomorphismSemantics(t *testing.T) {
	// Two pattern vertices may map to the same graph vertex.
	b := graph.NewBuilder(nil)
	b.AddLabel("u", "A")
	b.AddEdge("u", "p", "u")
	g := b.Freeze()
	p := &Pattern{
		Vertices: []Vertex{
			{Name: "x", Label: "A", Distinguished: true},
			{Name: "y", Label: "A", Distinguished: true},
		},
		Edges: []Edge{{From: 0, To: 1, Label: "p"}},
	}
	res := EnumerateNaive(p, g)
	if res.Len() != 1 {
		t.Fatalf("homomorphism (self-loop) matches = %d", res.Len())
	}
}

func BenchmarkDNF(b *testing.B) {
	c := Or{
		And{Or{LabelIs{0, "a"}, LabelIs{0, "b"}}, Or{LabelIs{1, "c"}, LabelIs{1, "d"}}},
		And{EdgeIs{0, 1, "p"}, Or{LabelIs{2, "e"}, EdgeExists{2, "q", true}}},
	}
	for i := 0; i < b.N; i++ {
		if len(DNF(c)) == 0 {
			b.Fatal("empty DNF")
		}
	}
}

func BenchmarkEvalCond(b *testing.B) {
	g := fig2Graph()
	p := q5Prime()
	m := Mapping{0, 2, 5, Omitted}
	cond := p.Vertices[2].Match
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(cond, m, g)
	}
}
