package ogpa

import (
	"testing"

	"ogpa/internal/lint"
)

// TestRepoLintClean runs the repository's own static-analysis pass (the
// same one `go run ./cmd/ogpalint ./...` runs) as part of tier-1 tests, so
// the invariants it checks — exhaustive I1–I11 and condition-AST switches,
// lock discipline, no dropped errors, interned hot-path comparisons, no
// by-value copies of atomic-holding structs, one snapshot per request
// flow, epoch-qualified cache keys, cancellation polling in unbounded
// engine loops — are enforced on every change forever.
func TestRepoLintClean(t *testing.T) {
	if n := len(lint.All()); n != 8 {
		t.Fatalf("analyzer catalogue has %d entries, want 8; keep DESIGN.md §7 and this test in sync", n)
	}
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module loader is missing code", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
