package ogpa

import (
	"strings"
	"testing"
)

func TestAnswerSPARQL(t *testing.T) {
	kb := exampleKB(t)
	ans, err := kb.AnswerSPARQL(`
PREFIX ex: <http://ex.org/>
SELECT ?x WHERE {
    ?x a ex:Student .
    ?x ex:takesCourse ?c .
}`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ann (PhD ⊑ Student ⊑ ∃takesCourse) and Bob.
	if ans.Len() != 2 || ans.Rows[0][0] != "Ann" || ans.Rows[1][0] != "Bob" {
		t.Fatalf("answers = %v", ans.Rows)
	}
	if _, err := kb.AnswerSPARQL("SELECT nope", Options{}); err == nil {
		t.Fatal("bad SPARQL accepted")
	}
}

func TestAnswerBatch(t *testing.T) {
	kb := exampleKB(t)
	res, err := kb.AnswerBatch([]string{
		`q(x) :- Student(x), takesCourse(x, y)`,
		`q(x) :- PhD(x), advisorOf(z, x)`,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	// First: Ann and Bob; second: Ann only (PhD ⊑ ∃advisorOf⁻ entails the
	// advisor).
	if res[0].Len() != 2 {
		t.Fatalf("batch[0] = %v", res[0].Rows)
	}
	if res[1].Len() != 1 || res[1].Rows[0][0] != "Ann" {
		t.Fatalf("batch[1] = %v", res[1].Rows)
	}
	// Batched answers must agree with single-query answers.
	single, err := kb.Answer(`q(x) :- Student(x), takesCourse(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	if single.Len() != res[0].Len() {
		t.Fatalf("batch %v vs single %v", res[0].Rows, single.Rows)
	}
	if _, err := kb.AnswerBatch([]string{"bad"}, Options{}); err == nil {
		t.Fatal("bad batch query accepted")
	}
}

func TestCheckConsistency(t *testing.T) {
	kb, err := NewKB(strings.NewReader(`
PhD SubClassOf Student
Student DisjointWith Course
`), strings.NewReader(`
PhD(Ann)
Course(Ann)
`))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := kb.CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "Ann") {
		t.Fatalf("violations = %v", vs)
	}

	ok := exampleKB(t)
	vs, err = ok.CheckConsistency()
	if err != nil || len(vs) != 0 {
		t.Fatalf("vs=%v err=%v", vs, err)
	}
}

func TestMinimizeQuery(t *testing.T) {
	min, err := MinimizeQuery(`q(x) :- advisorOf(y1, x), advisorOf(y1, y2), advisorOf(y1, y3), takesCourse(x, z)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(min, "advisorOf") != 1 {
		t.Fatalf("minimized = %s", min)
	}
	if _, err := MinimizeQuery("bad"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestExplainProvenanceFacade(t *testing.T) {
	kb := exampleKB(t)
	rw, err := kb.Rewrite(`q(x) :- Student(x)`)
	if err != nil {
		t.Fatal(err)
	}
	out := rw.ExplainProvenance()
	if !strings.Contains(out, "PhD(x)   [PhD SubClassOf Student]") {
		t.Fatalf("provenance:\n%s", out)
	}
}
