package ogpa

import (
	"fmt"
	"sync"

	"ogpa/internal/cq"
	"ogpa/internal/daf"
	"ogpa/internal/datalog"
	"ogpa/internal/inc"
	"ogpa/internal/rdf"
	"ogpa/internal/saturate"
)

// maxIncChains bounds how many maintained states one KB keeps; queries
// beyond the cap silently take the cold (rebuild-per-call) path so an
// adversarial query stream cannot grow memory without bound.
const maxIncChains = 64

// incMemo holds the KB's incremental-maintenance state: an inc.Manager
// riding the delta store's watcher stream, plus maintained chains keyed
// by standing query (datalog) or chase depth (saturate). It is its own
// struct so KB itself holds no mutex — the aboxMemo pattern.
//
// Chains are keyed by query text / depth alone, NOT by epoch: a
// maintained chain deliberately spans epochs (advancing it IS the
// maintenance), and every answer returns the epoch it is exact for.
type incMemo struct {
	mu    sync.Mutex
	mgr   *inc.Manager
	dl    map[string]*inc.DatalogChain
	chase map[int]*inc.ChaseChain
	cons  *inc.ConsistencyChain
	hub   *subHub
}

// EnableIncremental attaches incremental maintenance to a live KB: the
// ABox-based pipelines (BaselineDatalog, BaselineSaturate,
// CheckConsistency) stop cold-rebuilding their derived state after
// every InsertTriples/DeleteTriples and instead advance maintained
// fixpoints batch-by-batch, and Subscribe starts accepting standing
// queries. Must be called after EnableLiveData; calling it twice is an
// error.
func (kb *KB) EnableIncremental() error {
	if kb.store == nil {
		return fmt.Errorf("ogpa: incremental maintenance needs live data (call EnableLiveData first)")
	}
	kb.inc.mu.Lock()
	defer kb.inc.mu.Unlock()
	if kb.inc.mgr != nil {
		return fmt.Errorf("ogpa: incremental maintenance already enabled")
	}
	kb.inc.mgr = inc.NewManager(kb.store, rdf.LocalName)
	kb.inc.dl = map[string]*inc.DatalogChain{}
	kb.inc.chase = map[int]*inc.ChaseChain{}
	kb.inc.hub = newSubHub(kb)
	return nil
}

// Incremental reports whether maintained-state answering is enabled.
func (kb *KB) Incremental() bool {
	kb.inc.mu.Lock()
	defer kb.inc.mu.Unlock()
	return kb.inc.mgr != nil
}

// IncrementalStats mirrors the maintenance subsystem's counters for the
// serving tier's /stats surface (zero value when incremental
// maintenance is disabled).
type IncrementalStats struct {
	Enabled       bool   `json:"enabled"`
	Epoch         uint64 `json:"epoch"`         // epoch all chains are advanced to
	Batches       uint64 `json:"batches"`       // committed batches applied
	Triples       uint64 `json:"triples"`       // triples translated into assertions
	Attributes    uint64 `json:"attributes"`    // literal-object triples skipped
	Chains        int    `json:"chains"`        // registered maintained chains
	Rebuilds      uint64 `json:"rebuilds"`      // chains rebuilt after an apply error
	Subscriptions int    `json:"subscriptions"` // live standing queries
	Deltas        uint64 `json:"deltas"`        // answer deltas published
	EvalErrors    uint64 `json:"eval_errors"`   // standing-query evaluation failures
}

// IncrementalStats reports the maintenance counters.
func (kb *KB) IncrementalStats() IncrementalStats {
	kb.inc.mu.Lock()
	mgr, hub := kb.inc.mgr, kb.inc.hub
	kb.inc.mu.Unlock()
	if mgr == nil {
		return IncrementalStats{}
	}
	st := mgr.Stats()
	out := IncrementalStats{
		Enabled:    true,
		Epoch:      st.Epoch,
		Batches:    st.Batches,
		Triples:    st.Triples,
		Attributes: st.Attributes,
		Chains:     st.Chains,
		Rebuilds:   st.Rebuilds,
	}
	out.Subscriptions, out.Deltas, out.EvalErrors = hub.counters()
	return out
}

// incEligible reports whether a call with these options may use a
// maintained chain: bounded calls (timeout / row caps) keep the cold
// path so their limit semantics stay exact.
func incEligible(opt Options) bool {
	return opt.Timeout == 0 && opt.MaxResults == 0 && opt.Context == nil
}

// datalogChain resolves (or registers) the maintained fixpoint for one
// query's program. ok is false when incremental maintenance is off or
// the chain cap is reached — the caller then takes the cold path.
func (kb *KB) datalogChain(query string, prog *datalog.Program) (c *inc.DatalogChain, ok bool, err error) {
	kb.inc.mu.Lock()
	defer kb.inc.mu.Unlock()
	if kb.inc.mgr == nil {
		return nil, false, nil
	}
	if c = kb.inc.dl[query]; c != nil {
		return c, true, nil
	}
	if len(kb.inc.dl)+len(kb.inc.chase) >= maxIncChains {
		return nil, false, nil
	}
	c, err = kb.inc.mgr.RegisterDatalog(prog, datalog.Limits{})
	if err != nil {
		return nil, false, err
	}
	kb.inc.dl[query] = c
	return c, true, nil
}

// chaseChain resolves (or registers) the maintained chase of the given
// depth. Same contract as datalogChain.
func (kb *KB) chaseChain(depth int) (c *inc.ChaseChain, ok bool, err error) {
	kb.inc.mu.Lock()
	defer kb.inc.mu.Unlock()
	if kb.inc.mgr == nil {
		return nil, false, nil
	}
	if c = kb.inc.chase[depth]; c != nil {
		return c, true, nil
	}
	if len(kb.inc.dl)+len(kb.inc.chase) >= maxIncChains {
		return nil, false, nil
	}
	c, err = kb.inc.mgr.RegisterChase(kb.tbox, depth, saturate.Limits{})
	if err != nil {
		return nil, false, err
	}
	kb.inc.chase[depth] = c
	return c, true, nil
}

// consistencyChain resolves (or registers) the maintained violation
// index. Same contract as datalogChain.
func (kb *KB) consistencyChain() (c *inc.ConsistencyChain, ok bool, err error) {
	kb.inc.mu.Lock()
	defer kb.inc.mu.Unlock()
	if kb.inc.mgr == nil {
		return nil, false, nil
	}
	if kb.inc.cons != nil {
		return kb.inc.cons, true, nil
	}
	c, err = kb.inc.mgr.RegisterConsistency(kb.tbox, saturate.Limits{})
	if err != nil {
		return nil, false, err
	}
	kb.inc.cons = c
	return c, true, nil
}

// incDatalogAnswer answers through the maintained fixpoint; ok is false
// when the call must take the cold path instead.
func (kb *KB) incDatalogAnswer(query string, prog *datalog.Program, q *cq.Query) (ans *Answers, ok bool, err error) {
	c, ok, err := kb.datalogChain(query, prog)
	if err != nil || !ok {
		return nil, ok, err
	}
	tuples, _, err := c.Answer()
	if err != nil {
		return nil, true, err
	}
	out := &Answers{Vars: append([]string(nil), q.Head...)}
	for _, t := range tuples {
		out.Rows = append(out.Rows, append([]string(nil), t...))
	}
	sortRows(out.Rows)
	return out, true, nil
}

// incSaturateAnswer answers through the maintained chase; ok is false
// when the call must take the cold path instead.
func (kb *KB) incSaturateAnswer(q *cq.Query) (ans *Answers, ok bool, err error) {
	c, ok, err := kb.chaseChain(q.Size() + 1)
	if err != nil || !ok {
		return nil, ok, err
	}
	res, mg, _, err := c.Answer(q, daf.Limits{})
	if err != nil {
		return nil, true, err
	}
	out := &Answers{Vars: append([]string(nil), q.Head...)}
	for _, row := range res.Answers() {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = mg.Name(v)
		}
		out.Rows = append(out.Rows, cells)
	}
	sortRows(out.Rows)
	return out, true, nil
}

// incConsistency checks through the maintained violation index; ok is
// false when the call must take the cold path instead.
func (kb *KB) incConsistency() (violations []string, ok bool, err error) {
	c, ok, err := kb.consistencyChain()
	if err != nil || !ok {
		return nil, ok, err
	}
	_, vs, _, err := c.Check()
	if err != nil {
		return nil, true, err
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out, true, nil
}
