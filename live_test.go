package ogpa

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func liveKB(t testing.TB, data string) *KB {
	t.Helper()
	kb, err := NewKBFromTriples(strings.NewReader(exampleOntology), strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableLiveData(-1); err != nil {
		t.Fatal(err)
	}
	return kb
}

const liveBaseData = `
Ann a PhD .
Bob a Student .
Prof advisorOf Bob .
Bob takesCourse DB101 .
`

func TestLiveDataBasics(t *testing.T) {
	kb := liveKB(t, liveBaseData)
	if !kb.Live() || kb.Epoch() != 1 {
		t.Fatalf("Live=%v Epoch=%d after EnableLiveData", kb.Live(), kb.Epoch())
	}
	if err := kb.EnableLiveData(0); err == nil {
		t.Fatal("double EnableLiveData should error")
	}

	query := `q(x) :- Student(x)`
	ans, err := kb.Answer(query)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 { // Ann (PhD ⊑ Student) and Bob
		t.Fatalf("baseline answers = %v", ans.Rows)
	}

	n, err := kb.InsertTriples(strings.NewReader("Carl a Student .\nCarl takesCourse DB101 ."))
	if err != nil || n != 2 {
		t.Fatalf("InsertTriples = %d, %v", n, err)
	}
	if kb.Epoch() != 2 || kb.OverlaySize() != 2 {
		t.Fatalf("Epoch=%d OverlaySize=%d after insert", kb.Epoch(), kb.OverlaySize())
	}
	ans, err = kb.Answer(query)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Fatalf("after insert: %v", ans.Rows)
	}

	if _, err := kb.DeleteTriples(strings.NewReader("Carl a Student .")); err != nil {
		t.Fatal(err)
	}
	ans, err = kb.Answer(query)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("after delete: %v", ans.Rows)
	}

	// The ABox view follows the epoch, so ABox-based pipelines see writes.
	got, err := kb.AnswerBaseline(BaselineDatalog, query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("datalog on live KB: %v", got.Rows)
	}
	if !strings.Contains(kb.Stats(), "live epoch=3") {
		t.Fatalf("Stats = %q", kb.Stats())
	}
}

func TestReadOnlyKBRejectsMutations(t *testing.T) {
	kb := exampleKB(t)
	if kb.Live() || kb.Epoch() != 0 {
		t.Fatal("fresh KB should be read-only at epoch 0")
	}
	if _, err := kb.InsertTriples(strings.NewReader("X a Student .")); err == nil {
		t.Fatal("insert on read-only KB should error")
	}
	if _, err := kb.DeleteTriples(strings.NewReader("X a Student .")); err == nil {
		t.Fatal("delete on read-only KB should error")
	}
}

// TestPreparedQueryPinsItsSnapshot documents the plan-cache contract: a
// prepared plan answers against the epoch it was built on; freshness
// comes from re-preparing under the new epoch (the server keys its cache
// by epoch for exactly this reason).
func TestPreparedQueryPinsItsSnapshot(t *testing.T) {
	kb := liveKB(t, liveBaseData)
	pq, err := kb.Prepare(`q(x) :- Student(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kb.InsertTriples(strings.NewReader("Dana a Student .\nDana takesCourse DB101 .")); err != nil {
		t.Fatal(err)
	}
	old, err := pq.Answer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 2 {
		t.Fatalf("pinned plan leaked the new epoch: %v", old.Rows)
	}
	fresh, err := kb.Answer(`q(x) :- Student(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 3 {
		t.Fatalf("fresh answer misses the write: %v", fresh.Rows)
	}
}

func TestContextCancellationTruncatesCleanly(t *testing.T) {
	kb := exampleKB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the matcher must stop at the first check

	ans, st, err := kb.AnswerWithStats(`q(x) :- Student(x)`, Options{Context: ctx})
	if err != nil {
		t.Fatalf("canceled context should truncate, not fail: %v", err)
	}
	if !st.Truncated {
		t.Fatal("Stats.Truncated not set on cancellation")
	}
	if ans.Len() != 0 {
		t.Fatalf("pre-canceled run returned %d answers", ans.Len())
	}

	// Same contract through the prepared UCQ baseline.
	pq, err := kb.PrepareBaseline(BaselineUCQ, `q(x) :- Student(x)`)
	if err != nil {
		t.Fatal(err)
	}
	ans, st, err = pq.AnswerWithStats(Options{Context: ctx})
	if err != nil {
		t.Fatalf("ucq: %v", err)
	}
	if !st.Truncated || ans.Len() != 0 {
		t.Fatalf("ucq: truncated=%v len=%d", st.Truncated, ans.Len())
	}

	// A live context changes nothing.
	ans, st, err = kb.AnswerWithStats(`q(x) :- Student(x)`, Options{Context: context.Background()})
	if err != nil || st.Truncated || ans.Len() != 2 {
		t.Fatalf("live context: err=%v truncated=%v len=%d", err, st.Truncated, ans.Len())
	}
}

// tripleSet is the oracle for the live-vs-rebuild equivalence test: the
// effective set of (bare-word) triples after a mutation script.
type tripleSet map[string]bool

func (ts tripleSet) text() string {
	lines := make([]string, 0, len(ts))
	for l := range ts {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func answersString(t *testing.T, ans *Answers, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(ans.Vars, ","))
	sb.WriteByte('\n')
	for _, row := range ans.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestLiveEquivalence100Seeds drives 100 random mutation scripts against
// a live KB (with a tiny compaction threshold, so compaction happens
// mid-script) and checks that, after every batch, both pipelines —
// GenOGP+OMatch and PerfectRef+DAF — return byte-identical answers to a
// KB rebuilt from scratch from the effective triple set.
func TestLiveEquivalence100Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("100-seed property test")
	}
	verts := []string{"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	labels := []string{"PhD", "Student", "Course"}
	preds := []string{"takesCourse", "advisorOf"}
	queries := []string{
		`q(x) :- Student(x)`,
		`q(x) :- PhD(x), takesCourse(x, y)`,
		`q(x, y) :- advisorOf(y, x), takesCourse(x, z)`,
	}

	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eff := tripleSet{}
		randomTriple := func() string {
			if rng.Intn(2) == 0 {
				return fmt.Sprintf("%s a %s .", verts[rng.Intn(len(verts))], labels[rng.Intn(len(labels))])
			}
			return fmt.Sprintf("%s %s %s .", verts[rng.Intn(len(verts))], preds[rng.Intn(len(preds))], verts[rng.Intn(len(verts))])
		}

		for i := 0; i < 12; i++ {
			eff[randomTriple()] = true
		}
		kb, err := NewKBFromTriples(strings.NewReader(exampleOntology), strings.NewReader(eff.text()))
		if err != nil {
			t.Fatal(err)
		}
		if err := kb.EnableLiveData(6); err != nil { // tiny: compaction fires mid-script
			t.Fatal(err)
		}

		for batch := 0; batch < 3; batch++ {
			del := rng.Intn(3) == 0
			var lines []string
			for i := 0; i < 4+rng.Intn(4); i++ {
				tr := randomTriple()
				lines = append(lines, tr)
				if del {
					delete(eff, tr)
				} else {
					eff[tr] = true
				}
			}
			body := strings.NewReader(strings.Join(lines, "\n"))
			if del {
				_, err = kb.DeleteTriples(body)
			} else {
				_, err = kb.InsertTriples(body)
			}
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}

			rebuilt, err := NewKBFromTriples(strings.NewReader(exampleOntology), strings.NewReader(eff.text()))
			if err != nil {
				t.Fatalf("seed %d batch %d rebuild: %v", seed, batch, err)
			}
			for _, q := range queries {
				liveAns, liveErr := kb.Answer(q)
				liveOM := answersString(t, liveAns, liveErr)
				rebAns, rebErr := rebuilt.Answer(q)
				rebOM := answersString(t, rebAns, rebErr)
				if liveOM != rebOM {
					t.Fatalf("seed %d batch %d OMatch diverged on %q:\n-- live --\n%s-- rebuild --\n%s",
						seed, batch, q, liveOM, rebOM)
				}
				liveUAns, liveUErr := kb.AnswerBaseline(BaselineUCQ, q, Options{})
				liveUCQ := answersString(t, liveUAns, liveUErr)
				rebUAns, rebUErr := rebuilt.AnswerBaseline(BaselineUCQ, q, Options{})
				rebUCQ := answersString(t, rebUAns, rebUErr)
				if liveUCQ != rebUCQ {
					t.Fatalf("seed %d batch %d UCQ diverged on %q:\n-- live --\n%s-- rebuild --\n%s",
						seed, batch, q, liveUCQ, rebUCQ)
				}
				if liveOM != liveUCQ {
					t.Fatalf("seed %d batch %d pipelines disagree on %q:\n-- omatch --\n%s-- ucq --\n%s",
						seed, batch, q, liveOM, liveUCQ)
				}
			}
		}
		kb.WaitIdle()
	}
}
