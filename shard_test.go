package ogpa

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ogpa/internal/testkb"
)

// shardedPair builds two KBs from the same (ontology, data) text: a
// monolithic one and one with scatter-gather execution over n shards.
// Both are live, so identical mutation scripts keep their VID spaces
// aligned and answers comparable byte-for-byte.
func shardedPair(t *testing.T, onto, data string, n int) (mono, sharded *KB) {
	t.Helper()
	for i, kb := range []**KB{&mono, &sharded} {
		k, err := NewKB(strings.NewReader(onto), strings.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := k.EnableLiveData(-1); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := k.EnableSharding(n); err != nil {
				t.Fatal(err)
			}
		}
		*kb = k
	}
	return mono, sharded
}

// TestShardedVsMonolithicSweep is the PR's correctness gate: across 100
// random KBs, every query answered through the scatter-gather path at
// N ∈ {2, 4, 8} must be byte-identical to the monolithic run — on both
// the primary GenOGP+OMatch pipeline and the PerfectRef+DAF UCQ
// baseline, before and after live write batches (which bump the epoch
// and force a fresh shard partition).
func TestShardedVsMonolithicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("100-seed property test")
	}
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb, abox, q := testkb.RandomKB(rng)
		onto, data := testkb.Render(tb, abox)
		queries := []string{q.String(), testkb.RandomQuery(rng).String()}

		// Write batches over the testkb vocabulary: existing individuals
		// a..e plus fresh ones (fresh vertices append at high VIDs, so a
		// batch routinely lands in several shards at once).
		concepts := []string{"A", "B", "C", "D"}
		roles := []string{"p", "q", "r"}
		inds := []string{"a", "b", "c", "d", "e", "f0", "f1"}
		randomBatch := func() string {
			var lines []string
			for i := 0; i < 2+rng.Intn(3); i++ {
				if rng.Intn(2) == 0 {
					lines = append(lines, fmt.Sprintf("%s a %s .",
						inds[rng.Intn(len(inds))], concepts[rng.Intn(len(concepts))]))
				} else {
					lines = append(lines, fmt.Sprintf("%s %s %s .",
						inds[rng.Intn(len(inds))], roles[rng.Intn(len(roles))], inds[rng.Intn(len(inds))]))
				}
			}
			return strings.Join(lines, "\n")
		}
		batch := randomBatch()

		for _, n := range []int{2, 4, 8} {
			mono, sharded := shardedPair(t, onto, data, n)
			check := func(round string) {
				for qi, src := range queries {
					wantAns, wantErr := mono.AnswerWithOptions(src, Options{})
					gotAns, gotErr := sharded.AnswerWithOptions(src, Options{})
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d n %d %s query %d (%s): errors diverge: mono %v, sharded %v",
							seed, n, round, qi, src, wantErr, gotErr)
					}
					if wantErr == nil && rowsString(wantAns) != rowsString(gotAns) {
						t.Fatalf("seed %d n %d %s query %d (%s): OGP answers diverge\nmono:\n%ssharded:\n%s",
							seed, n, round, qi, src, rowsString(wantAns), rowsString(gotAns))
					}
					wantAns, wantErr = mono.AnswerBaseline(BaselineUCQ, src, Options{})
					gotAns, gotErr = sharded.AnswerBaseline(BaselineUCQ, src, Options{})
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d n %d %s query %d (%s): UCQ errors diverge: mono %v, sharded %v",
							seed, n, round, qi, src, wantErr, gotErr)
					}
					if wantErr == nil && rowsString(wantAns) != rowsString(gotAns) {
						t.Fatalf("seed %d n %d %s query %d (%s): UCQ answers diverge\nmono:\n%ssharded:\n%s",
							seed, n, round, qi, src, rowsString(wantAns), rowsString(gotAns))
					}
				}
			}
			check("pre-write")
			for _, kb := range []*KB{mono, sharded} {
				if _, err := kb.InsertTriples(strings.NewReader(batch)); err != nil {
					t.Fatalf("seed %d n %d: insert: %v", seed, n, err)
				}
			}
			check("post-write")
		}
	}
}

// TestShardedN1Degenerate: a single shard still takes the scatter path
// (one goroutine, one bucket) and must be byte-identical to monolithic,
// with exactly one per-shard stats row accounting for the run.
func TestShardedN1Degenerate(t *testing.T) {
	mono, sharded := shardedPair(t, exampleOntology, exampleData, 1)
	for _, src := range []string{
		`q(x) :- Student(x)`,
		`q(x) :- PhD(x), takesCourse(x, y)`,
		`q(x, y) :- advisorOf(y, x), takesCourse(x, z)`,
	} {
		want, err := mono.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := sharded.AnswerWithStats(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rowsString(want) != rowsString(got) {
			t.Fatalf("%s: mono %v vs sharded %v", src, want.Rows, got.Rows)
		}
		if len(st.Shards) != 1 || st.Shards[0].Shard != 0 {
			t.Fatalf("%s: shard stats = %+v, want one row for shard 0", src, st.Shards)
		}
		if st.Shards[0].Items == 0 {
			t.Fatalf("%s: shard 0 saw no items", src)
		}
	}
}

// TestShardedEmptyAndSingletonShards drives more shards than the graph
// has vertices: most shards are empty, every populated shard owns one
// vertex, so every edge crosses a shard boundary. Answers must not
// change, and the topology must account for every vertex and edge.
func TestShardedEmptyAndSingletonShards(t *testing.T) {
	const n = 256
	mono, sharded := shardedPair(t, exampleOntology, exampleData, n)
	for _, src := range []string{
		`q(x) :- Student(x)`,
		`q(x, y) :- advisorOf(y, x), takesCourse(x, z)`,
	} {
		want, err := mono.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rowsString(want) != rowsString(got) {
			t.Fatalf("%s: mono %v vs sharded %v", src, want.Rows, got.Rows)
		}
	}
	infos := sharded.ShardStats()
	if len(infos) != n {
		t.Fatalf("ShardStats rows = %d, want %d", len(infos), n)
	}
	g := sharded.Graph()
	vertices, internal, cross, empty := 0, 0, 0, 0
	for _, info := range infos {
		vertices += info.Vertices
		internal += info.InternalEdges
		cross += info.CrossEdges
		if info.Vertices == 0 {
			empty++
		}
		if info.Vertices > 1 {
			t.Fatalf("shard %d owns %d vertices; %d shards over %d vertices must be singletons",
				info.Shard, info.Vertices, n, g.NumVertices())
		}
	}
	if vertices != g.NumVertices() || internal+cross != g.NumEdges() {
		t.Fatalf("topology accounts for %d vertices / %d+%d edges, graph has %d / %d",
			vertices, internal, cross, g.NumVertices(), g.NumEdges())
	}
	if empty == 0 || cross == 0 {
		t.Fatalf("want empty shards and crossing edges (empty=%d cross=%d)", empty, cross)
	}
}

// shardOwner resolves a VID's owner from the /stats topology rows.
func shardOwner(t *testing.T, infos []ShardInfo, v uint32) int {
	t.Helper()
	for _, info := range infos {
		if info.LoVID <= v && v < info.HiVID {
			return info.Shard
		}
	}
	t.Fatalf("VID %d owned by no shard", v)
	return -1
}

// TestShardedLiveWritesAcrossShards: one insert batch touches an
// existing low-VID vertex and mints a fresh high-VID one, so its effects
// land in different shards of the re-derived partition. Answers must
// track the monolithic KB through the write.
func TestShardedLiveWritesAcrossShards(t *testing.T) {
	mono, sharded := shardedPair(t, exampleOntology, exampleData, 2)
	batch := "Ann advisorOf Newbie .\nNewbie a Student .\nNewbie takesCourse DB101 ."
	for _, kb := range []*KB{mono, sharded} {
		if _, err := kb.InsertTriples(strings.NewReader(batch)); err != nil {
			t.Fatal(err)
		}
	}
	infos := sharded.ShardStats()
	g := sharded.Graph()
	oldV, newV := g.VertexByName("Ann"), g.VertexByName("Newbie")
	if shardOwner(t, infos, uint32(oldV)) == shardOwner(t, infos, uint32(newV)) {
		t.Fatalf("batch landed in one shard (Ann VID %d, Newbie VID %d, topology %+v); widen the base data",
			oldV, newV, infos)
	}
	for _, src := range []string{
		`q(x) :- Student(x)`,
		`q(x, y) :- advisorOf(y, x), takesCourse(x, z)`,
	} {
		want, err := mono.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rowsString(want) != rowsString(got) {
			t.Fatalf("%s: mono %v vs sharded %v", src, want.Rows, got.Rows)
		}
	}
}

// TestShardStatsSingleEpoch is the torn-read gate for the multi-shard
// stats surface: while a writer commits batches, every ShardStats call
// must return rows pinned to ONE epoch covering the full VID space —
// never a mix of partitions from different store versions.
func TestShardStatsSingleEpoch(t *testing.T) {
	_, kb := shardedPair(t, exampleOntology, exampleData, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nt := fmt.Sprintf("w%d a Student .\nw%d takesCourse DB101 .", i, i)
			if _, err := kb.InsertTriples(strings.NewReader(nt)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 300; i++ {
		infos := kb.ShardStats()
		if len(infos) != 4 {
			t.Fatalf("iteration %d: %d rows", i, len(infos))
		}
		epoch := infos[0].Epoch
		vertices := 0
		for _, info := range infos {
			if info.Epoch != epoch {
				t.Fatalf("iteration %d: torn epochs %d vs %d in %+v", i, epoch, info.Epoch, infos)
			}
			vertices += info.Vertices
		}
		if infos[0].LoVID != 0 || int(infos[3].HiVID) != vertices {
			t.Fatalf("iteration %d: ranges do not cover [0, %d): %+v", i, vertices, infos)
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedBatchPinsOneShardSet: the batching/MQO tier pins one
// (graph, epoch, shard set) view per batch, so batched answers on a
// sharded KB stay byte-identical to sequential sharded answers.
func TestShardedBatchPinsOneShardSet(t *testing.T) {
	_, kb := shardedPair(t, exampleOntology, exampleData, 4)
	queries := []string{
		`q(x) :- advisorOf(y, x), takesCourse(x, z)`,
		`q(x) :- takesCourse(y, x), takesCourse(x, z)`,
		`q(x) :- Student(x)`,
	}
	results, st := kb.AnswerBatchCached(queries, Options{}, newMemBatchCache())
	if st.Queries != len(queries) {
		t.Fatalf("stats = %+v", st)
	}
	for i, src := range queries {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		want, err := kb.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rowsString(want) != rowsString(results[i].Answers) {
			t.Fatalf("query %d (%s): sequential %v vs batched %v",
				i, src, want.Rows, results[i].Answers.Rows)
		}
	}
}

// TestEnableShardingContract pins the configuration API: shard counts
// below one and mid-flight re-partitioning are rejected, re-enabling the
// same count is a no-op, and a read-only KB reports epoch-0 topology.
func TestEnableShardingContract(t *testing.T) {
	kb := exampleKB(t)
	if err := kb.EnableSharding(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if kb.Sharding() != 0 || kb.ShardStats() != nil {
		t.Fatalf("failed enable left config behind: n=%d", kb.Sharding())
	}
	if err := kb.EnableSharding(3); err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableSharding(3); err != nil {
		t.Fatalf("same-n re-enable: %v", err)
	}
	if err := kb.EnableSharding(5); err == nil {
		t.Fatal("changing n mid-flight accepted")
	}
	infos := kb.ShardStats()
	if len(infos) != 3 || infos[0].Epoch != 0 {
		t.Fatalf("read-only topology = %+v", infos)
	}
	ans, st, err := kb.AnswerWithStats(`q(x) :- Student(x)`, Options{})
	if err != nil || ans.Len() != 2 {
		t.Fatalf("sharded read-only answer: %v, %v", ans, err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("shard stats rows = %+v, want 3", st.Shards)
	}
}
