package ogpa

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ogpa/internal/testkb"
)

// memBatchCache is a minimal BatchCache for tests: plain maps, no
// eviction, counts plan builds it absorbed.
type memBatchCache struct {
	plans   map[string]any
	answers map[string][][]string
}

func newMemBatchCache() *memBatchCache {
	return &memBatchCache{plans: map[string]any{}, answers: map[string][][]string{}}
}

func (c *memBatchCache) GetPlan(key string) any { return c.plans[key] }

func (c *memBatchCache) PutPlan(key string, plan any) { c.plans[key] = plan }

func (c *memBatchCache) GetAnswers(key string) ([][]string, bool) {
	rows, ok := c.answers[key]
	return rows, ok
}

func (c *memBatchCache) PutAnswers(key string, rows [][]string) { c.answers[key] = rows }

func rowsString(a *Answers) string {
	var sb strings.Builder
	for _, r := range a.Rows {
		sb.WriteString(strings.Join(r, "\x00"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestBatchedVsSequentialSweep is the PR's correctness gate: across 100
// random KBs, batching four queries (shape-sharing, condition replay,
// omission handling, the gated-existential-root classes — whatever the
// seeds throw up) returns byte-identical answers to answering each query
// alone. A second batched pass through the same cache must then be
// answered entirely from the memo, again byte-identical.
func TestBatchedVsSequentialSweep(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb, abox, q := testkb.RandomKB(rng)
		onto, data := testkb.Render(tb, abox)
		kb, err := NewKB(strings.NewReader(onto), strings.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: NewKB: %v", seed, err)
		}
		queries := []string{q.String()}
		for k := 0; k < 3; k++ {
			queries = append(queries, testkb.RandomQuery(rng).String())
		}

		want := make([]string, len(queries))
		for i, src := range queries {
			ans, err := kb.AnswerWithOptions(src, Options{})
			if err != nil {
				t.Fatalf("seed %d query %d (%s): sequential: %v", seed, i, src, err)
			}
			want[i] = rowsString(ans)
		}

		cache := newMemBatchCache()
		results, st := kb.AnswerBatchCached(queries, Options{}, cache)
		if st.Queries != len(queries) {
			t.Fatalf("seed %d: stats queries = %d", seed, st.Queries)
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("seed %d query %d (%s): batched: %v", seed, i, queries[i], res.Err)
			}
			if got := rowsString(res.Answers); got != want[i] {
				t.Fatalf("seed %d query %d (%s): batched answers diverge\nsequential:\n%sbatched:\n%s",
					seed, i, queries[i], want[i], got)
			}
		}

		// Second pass: every member must come straight from the memo.
		results2, st2 := kb.AnswerBatchCached(queries, Options{}, cache)
		if st2.MemoHits != len(queries) {
			t.Fatalf("seed %d: second pass memo hits = %d, want %d (stats %+v)",
				seed, st2.MemoHits, len(queries), st2)
		}
		for i, res := range results2 {
			if res.Err != nil {
				t.Fatalf("seed %d query %d: memoized pass: %v", seed, i, res.Err)
			}
			if got := rowsString(res.Answers); got != want[i] {
				t.Fatalf("seed %d query %d: memoized answers diverge", seed, i)
			}
		}
	}
}

// TestBatchSharingOnSharedShapes pins the sharing machinery on a
// workload built to group: predicate variants of one shape must compile
// to a single merged group, and repeated members must ride the memo.
func TestBatchSharingOnSharedShapes(t *testing.T) {
	kb := exampleKB(t)
	queries := []string{
		`q(x) :- advisorOf(y, x), takesCourse(x, z)`,
		`q(x) :- takesCourse(y, x), takesCourse(x, z)`,
		`q(x) :- advisorOf(y, x), advisorOf(x, z)`,
	}
	cache := newMemBatchCache()
	results, st := kb.AnswerBatchCached(queries, Options{}, cache)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
	}
	if st.Groups != 1 {
		t.Fatalf("stats = %+v, want one shape group", st)
	}
	// The cost model merges this group (the predicate variants' candidate
	// pools overlap on the example KB): three per-class plans feed the
	// model and the split path, plus the merged plan actually run.
	if st.MergedGroups != 1 || st.SplitGroups != 0 {
		t.Fatalf("stats = %+v, want one merged group", st)
	}
	if st.PlansBuilt != 4 || st.MergedMatches == 0 {
		t.Fatalf("stats = %+v, want 3 class plans + 1 merged plan and a shared enumeration", st)
	}
	// Equivalence against the sequential path, per member.
	for i, src := range queries {
		want, err := kb.AnswerWithOptions(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rowsString(want) != rowsString(results[i].Answers) {
			t.Fatalf("query %d (%s): %v vs %v", i, src, want.Rows, results[i].Answers.Rows)
		}
	}
}

// TestBatchPerMemberErrors: a parse failure in one member must not take
// down its batch siblings.
func TestBatchPerMemberErrors(t *testing.T) {
	kb := exampleKB(t)
	results, st := kb.AnswerBatchCached([]string{
		`q(x) :- Student(x)`,
		`not a query`,
	}, Options{}, nil)
	if results[0].Err != nil || results[0].Answers.Len() != 2 {
		t.Fatalf("healthy member: %+v", results[0])
	}
	if results[1].Err == nil {
		t.Fatal("bad member did not error")
	}
	if st.Queries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBatchMemoNotPoisonedByCaps: a member answered under MaxResults is
// truncated and must not be memoized; a later uncapped run has to see
// the full answer set.
func TestBatchMemoNotPoisonedByCaps(t *testing.T) {
	kb := exampleKB(t)
	query := `q(x) :- takesCourse(x, y)`
	cache := newMemBatchCache()
	capped, _ := kb.AnswerBatchCached([]string{query}, Options{MaxResults: 0}, cache)
	if capped[0].Err != nil {
		t.Fatal(capped[0].Err)
	}
	full := capped[0].Answers.Len()
	if full < 2 {
		t.Fatalf("want at least 2 answers to exercise the cap, got %d", full)
	}
	// The uncapped run memoized; a capped run must re-slice the memo rows
	// without shrinking the cached entry.
	capped2, st := kb.AnswerBatchCached([]string{query}, Options{MaxResults: 1}, cache)
	if st.MemoHits != 1 {
		t.Fatalf("stats = %+v, want a memo hit", st)
	}
	if capped2[0].Answers.Len() != 1 || !capped2[0].Truncated {
		t.Fatalf("capped result = %d rows, truncated %v", capped2[0].Answers.Len(), capped2[0].Truncated)
	}
	again, st2 := kb.AnswerBatchCached([]string{query}, Options{}, cache)
	if st2.MemoHits != 1 || again[0].Answers.Len() != full {
		t.Fatalf("memo poisoned: %d rows (want %d), stats %+v", again[0].Answers.Len(), full, st2)
	}
}

// TestBatchEpochInvalidation: after a live write bumps the epoch, cached
// plans and memoized answers from the old epoch must not be served.
func TestBatchEpochInvalidation(t *testing.T) {
	kb := exampleKB(t)
	if err := kb.EnableLiveData(-1); err != nil {
		t.Fatal(err)
	}
	query := `q(x) :- Student(x)`
	cache := newMemBatchCache()
	before, _ := kb.AnswerBatchCached([]string{query}, Options{}, cache)
	if before[0].Err != nil || before[0].Answers.Len() != 2 {
		t.Fatalf("before = %+v", before[0])
	}
	if _, err := kb.InsertTriples(strings.NewReader("Eve a Student .")); err != nil {
		t.Fatal(err)
	}
	after, st := kb.AnswerBatchCached([]string{query}, Options{}, cache)
	if st.MemoHits != 0 {
		t.Fatalf("stale memo served across epochs: %+v", st)
	}
	if after[0].Err != nil || after[0].Answers.Len() != 3 {
		rows := fmt.Sprint(after[0].Answers)
		t.Fatalf("post-insert answers = %s (err %v), want 3 rows", rows, after[0].Err)
	}
}
